#include "sim/logic_sim.hpp"

#include <cassert>
#include <stdexcept>

namespace fastmon {

LogicSim::LogicSim(const Netlist& netlist) : netlist_(&netlist) {
    if (!netlist.finalized()) {
        throw std::logic_error("LogicSim requires a finalized netlist");
    }
}

std::vector<Bit> LogicSim::eval(std::span<const Bit> sources) const {
    const Netlist& nl = *netlist_;
    assert(sources.size() == nl.comb_sources().size());
    std::vector<Bit> values(nl.size(), 0);
    bool ins[8] = {};
    for (GateId id : nl.topo_order()) {
        const Gate& g = nl.gate(id);
        const std::uint32_t src = nl.source_index(id);
        if (src != std::numeric_limits<std::uint32_t>::max()) {
            values[id] = sources[src];
            continue;
        }
        for (std::size_t p = 0; p < g.fanin.size(); ++p) {
            ins[p] = values[g.fanin[p]] != 0;
        }
        values[id] =
            g.type == CellType::Output
                ? static_cast<Bit>(ins[0])
                : static_cast<Bit>(eval_cell(
                      g.type, std::span<const bool>(ins, g.fanin.size())));
    }
    // Dff nodes are sources above; their *next-state* (fanin value) is
    // what observe_points() reads, via op.signal, so nothing else to do.
    return values;
}

std::vector<std::uint64_t> LogicSim::eval64(
    std::span<const std::uint64_t> sources) const {
    const Netlist& nl = *netlist_;
    assert(sources.size() == nl.comb_sources().size());
    std::vector<std::uint64_t> values(nl.size(), 0);
    std::vector<std::uint64_t> ins;
    for (GateId id : nl.topo_order()) {
        const Gate& g = nl.gate(id);
        const std::uint32_t src = nl.source_index(id);
        if (src != std::numeric_limits<std::uint32_t>::max()) {
            values[id] = sources[src];
            continue;
        }
        ins.resize(g.fanin.size());
        for (std::size_t p = 0; p < g.fanin.size(); ++p) {
            ins[p] = values[g.fanin[p]];
        }
        values[id] = g.type == CellType::Output
                         ? ins[0]
                         : eval_cell64(g.type, ins);
    }
    return values;
}

LogicSim::TernaryValues LogicSim::eval64_ternary(
    std::span<const std::uint64_t> sources_can0,
    std::span<const std::uint64_t> sources_can1) const {
    const Netlist& nl = *netlist_;
    assert(sources_can0.size() == nl.comb_sources().size());
    assert(sources_can1.size() == sources_can0.size());
    TernaryValues out;
    out.can0.assign(nl.size(), 0);
    out.can1.assign(nl.size(), 0);
    std::vector<std::uint64_t> in0;
    std::vector<std::uint64_t> in1;
    for (GateId id : nl.topo_order()) {
        const Gate& g = nl.gate(id);
        const std::uint32_t src = nl.source_index(id);
        if (src != std::numeric_limits<std::uint32_t>::max()) {
            out.can0[id] = sources_can0[src];
            out.can1[id] = sources_can1[src];
            continue;
        }
        in0.resize(g.fanin.size());
        in1.resize(g.fanin.size());
        for (std::size_t p = 0; p < g.fanin.size(); ++p) {
            in0[p] = out.can0[g.fanin[p]];
            in1[p] = out.can1[g.fanin[p]];
        }
        eval_cell64_ternary(g.type, in0, in1, out.can0[id], out.can1[id]);
    }
    return out;
}

}  // namespace fastmon
