#include "sim/fault_sim.hpp"

#include <cassert>
#include <unordered_map>

namespace fastmon {

FaultSim::FaultSim(const WaveSim& wave_sim) : wave_sim_(&wave_sim) {}

const Waveform& FaultSim::site_signal(const FaultSite& site,
                                      std::span<const Waveform> good) const {
    if (site.pin == FaultSite::kOutputPin) return good[site.gate];
    const Gate& g = wave_sim_->netlist().gate(site.gate);
    return good[g.fanin[site.pin]];
}

bool FaultSim::activated(const DelayFault& fault,
                         std::span<const Waveform> good) const {
    const Waveform& w = site_signal(fault.site, good);
    // A slow-to-rise fault needs a rising edge at the site (and vice
    // versa).  Walk the toggle parity to find one.
    bool value = w.initial();
    for (Time t : w.transitions()) {
        (void)t;
        value = !value;
        if (value == fault.slow_rising) return true;
    }
    return false;
}

std::vector<ObserveDiff> FaultSim::simulate(
    const DelayFault& fault, std::span<const Waveform> good) const {
    const Netlist& nl = wave_sim_->netlist();
    assert(good.size() == nl.size());

    // Sparse faulty-waveform overlay: only gates that differ from the
    // fault-free simulation are present.
    std::unordered_map<GateId, Waveform> faulty;
    faulty.reserve(64);

    const GateId site_gate = fault.site.gate;
    const std::vector<GateId> cone = nl.fanout_cone(site_gate);

    std::vector<const Waveform*> fanin_waves;
    for (GateId id : cone) {
        const Gate& g = nl.gate(id);

        if (id == site_gate) {
            Waveform w;
            if (fault.site.pin == FaultSite::kOutputPin) {
                // Output fault: retard the slow edges of the gate's own
                // output waveform.
                w = good[id].with_slowed_edges(fault.slow_rising, fault.delta);
            } else {
                // Input-pin fault: the gate sees a retarded version of
                // the driving waveform on that one pin.
                const Waveform pin_wave =
                    good[g.fanin[fault.site.pin]].with_slowed_edges(
                        fault.slow_rising, fault.delta);
                fanin_waves.clear();
                for (std::uint32_t p = 0; p < g.fanin.size(); ++p) {
                    fanin_waves.push_back(p == fault.site.pin
                                              ? &pin_wave
                                              : &good[g.fanin[p]]);
                }
                w = wave_sim_->eval_gate(id, fanin_waves);
            }
            if (!(w == good[id])) faulty.emplace(id, std::move(w));
            continue;
        }

        // Re-evaluate only if some fanin waveform changed.
        bool any_faulty_input = false;
        for (GateId f : g.fanin) {
            if (faulty.contains(f)) {
                any_faulty_input = true;
                break;
            }
        }
        if (!any_faulty_input) continue;

        if (!is_combinational(g.type)) {
            // Output/Dff sinks mirror their fanin; record the difference
            // implicitly via the driving gate (handled below).
            continue;
        }

        fanin_waves.clear();
        for (GateId f : g.fanin) {
            auto it = faulty.find(f);
            fanin_waves.push_back(it != faulty.end() ? &it->second : &good[f]);
        }
        Waveform w = wave_sim_->eval_gate(id, fanin_waves);
        if (!(w == good[id])) faulty.emplace(id, std::move(w));
    }

    // Collect differences at observation points.
    std::vector<ObserveDiff> diffs;
    const auto ops = nl.observe_points();
    for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
        auto it = faulty.find(ops[oi].signal);
        if (it == faulty.end()) continue;
        Waveform diff = Waveform::xor_of(good[ops[oi].signal], it->second);
        if (!diff.is_constant() || diff.initial()) {
            diffs.push_back(ObserveDiff{oi, std::move(diff)});
        }
    }
    return diffs;
}

}  // namespace fastmon
