#include "sim/fault_sim.hpp"

#include <cassert>

namespace fastmon {

GateId fault_site_signal(const Netlist& netlist, const FaultSite& site) {
    if (site.pin == FaultSite::kOutputPin) return site.gate;
    return netlist.gate(site.gate).fanin[site.pin];
}

ConeCache::ConeCache(const Netlist& netlist)
    : netlist_(&netlist), slots_(netlist.size()) {}

ConeCache::~ConeCache() {
    for (auto& slot : slots_) {
        delete slot.load(std::memory_order_relaxed);
    }
}

const std::vector<GateId>& ConeCache::cone(GateId gate) const {
    std::atomic<const std::vector<GateId>*>& slot = slots_[gate];
    const std::vector<GateId>* existing = slot.load(std::memory_order_acquire);
    if (existing != nullptr) return *existing;
    auto* fresh = new std::vector<GateId>(netlist_->fanout_cone(gate));
    if (slot.compare_exchange_strong(existing, fresh,
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
        return *fresh;
    }
    delete fresh;  // another thread published first; results are identical
    return *existing;
}

std::size_t ConeCache::materialized() const {
    std::size_t count = 0;
    for (const auto& slot : slots_) {
        if (slot.load(std::memory_order_relaxed) != nullptr) ++count;
    }
    return count;
}

void FaultSimScratch::begin_epoch(std::size_t num_gates) {
    if (overlay_.size() != num_gates) {
        overlay_.assign(num_gates, Waveform());
        stamp_.assign(num_gates, 0);
        epoch_ = 0;
    }
    if (++epoch_ == 0) {  // epoch counter wrapped: stamps are stale
        stamp_.assign(num_gates, 0);
        epoch_ = 1;
    }
}

FaultSim::FaultSim(const WaveSim& wave_sim, const ConeCache* cones)
    : wave_sim_(&wave_sim), cones_(cones) {}

const Waveform& FaultSim::site_signal(const FaultSite& site,
                                      std::span<const Waveform> good) const {
    return good[fault_site_signal(wave_sim_->netlist(), site)];
}

bool FaultSim::activated(const DelayFault& fault,
                         std::span<const Waveform> good) const {
    const Waveform& w = site_signal(fault.site, good);
    // A slow-to-rise fault needs a rising edge at the site (and vice
    // versa).  Walk the toggle parity to find one.
    bool value = w.initial();
    for (Time t : w.transitions()) {
        (void)t;
        value = !value;
        if (value == fault.slow_rising) return true;
    }
    return false;
}

std::vector<ObserveDiff> FaultSim::simulate(
    const DelayFault& fault, std::span<const Waveform> good) const {
    FaultSimScratch scratch;
    return simulate(fault, good, scratch);
}

std::vector<ObserveDiff> FaultSim::simulate(
    const DelayFault& fault, std::span<const Waveform> good,
    FaultSimScratch& scratch) const {
    const Netlist& nl = wave_sim_->netlist();
    assert(good.size() == nl.size());

    // Sparse faulty-waveform overlay: only gates that differ from the
    // fault-free simulation are stamped with the current epoch.
    scratch.begin_epoch(nl.size());

    const GateId site_gate = fault.site.gate;
    const std::vector<GateId>& cone = cones_ != nullptr
                                          ? cones_->cone(site_gate)
                                          : scratch.cone_storage_ =
                                                nl.fanout_cone(site_gate);

    std::vector<const Waveform*>& fanin_waves = scratch.fanin_waves_;
    for (GateId id : cone) {
        const Gate& g = nl.gate(id);

        if (id == site_gate) {
            Waveform w;
            if (fault.site.pin == FaultSite::kOutputPin) {
                // Output fault: retard the slow edges of the gate's own
                // output waveform.
                w = good[id].with_slowed_edges(fault.slow_rising, fault.delta);
            } else {
                // Input-pin fault: the gate sees a retarded version of
                // the driving waveform on that one pin.
                const Waveform pin_wave =
                    good[g.fanin[fault.site.pin]].with_slowed_edges(
                        fault.slow_rising, fault.delta);
                fanin_waves.clear();
                for (std::uint32_t p = 0; p < g.fanin.size(); ++p) {
                    fanin_waves.push_back(p == fault.site.pin
                                              ? &pin_wave
                                              : &good[g.fanin[p]]);
                }
                w = wave_sim_->eval_gate(id, fanin_waves);
                ++scratch.gates_evaluated_;
            }
            if (!(w == good[id])) scratch.put(id) = std::move(w);
            continue;
        }

        // Re-evaluate only if some fanin waveform changed.
        bool any_faulty_input = false;
        for (GateId f : g.fanin) {
            if (scratch.has(f)) {
                any_faulty_input = true;
                break;
            }
        }
        if (!any_faulty_input) continue;

        if (!is_combinational(g.type)) {
            // Output/Dff sinks mirror their fanin; record the difference
            // implicitly via the driving gate (handled below).
            continue;
        }

        fanin_waves.clear();
        for (GateId f : g.fanin) {
            fanin_waves.push_back(scratch.has(f) ? &scratch.overlay_[f]
                                                 : &good[f]);
        }
        Waveform w = wave_sim_->eval_gate(id, fanin_waves);
        ++scratch.gates_evaluated_;
        if (!(w == good[id])) scratch.put(id) = std::move(w);
    }

    // Collect differences at observation points.
    std::vector<ObserveDiff> diffs;
    const auto ops = nl.observe_points();
    for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
        const GateId sig = ops[oi].signal;
        if (!scratch.has(sig)) continue;
        Waveform diff = Waveform::xor_of(good[sig], scratch.overlay_[sig]);
        if (!diff.is_constant() || diff.initial()) {
            diffs.push_back(ObserveDiff{oi, std::move(diff)});
        }
    }
    return diffs;
}

}  // namespace fastmon
