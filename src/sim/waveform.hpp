// Signal waveforms for timing-accurate simulation.
//
// A Waveform is an initial logic value plus a strictly increasing list
// of toggle times — the representation used by waveform-based delay
// fault simulators such as the GPU engine the paper builds on [20].
// Detection ranges fall out of waveform algebra: XOR the fault-free and
// faulty output waveforms and take the regions where the XOR is 1
// (Sec. III-B).
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "util/interval.hpp"

namespace fastmon {

class Waveform {
public:
    /// Constant signal.
    static Waveform constant(bool value);

    /// Signal with initial value `initial` toggling once at time t.
    static Waveform step(bool initial, Time t);

    /// Builds a waveform from (time, value-after-event) pairs sorted by
    /// time (ties allowed; later entries win).  Events that do not change
    /// the value are dropped.
    static Waveform from_events(bool initial,
                                std::span<const std::pair<Time, bool>> events);

    [[nodiscard]] bool initial() const { return initial_; }
    [[nodiscard]] bool final() const {
        return (transitions_.size() % 2 == 0) == initial_;
    }

    /// Value at time t; a transition at exactly t is already visible.
    [[nodiscard]] bool value_at(Time t) const;

    [[nodiscard]] std::size_t num_transitions() const { return transitions_.size(); }
    [[nodiscard]] std::span<const Time> transitions() const { return transitions_; }
    [[nodiscard]] bool is_constant() const { return transitions_.empty(); }

    /// Time of the last transition (0 if constant).
    [[nodiscard]] Time settle_time() const {
        return transitions_.empty() ? 0.0 : transitions_.back();
    }

    /// Inertial pulse filtering: repeatedly cancels adjacent transition
    /// pairs closer than min_width, modelling pulses swallowed by the
    /// gate's output stage.
    void filter_pulses(Time min_width);

    /// Shifts every transition of the given direction (rising if
    /// `rising`) right by delta, then renormalizes — the waveform-level
    /// manifestation of a slow-to-rise / slow-to-fall small delay fault
    /// of size delta at this signal.
    [[nodiscard]] Waveform with_slowed_edges(bool rising, Time delta) const;

    /// Pointwise XOR of two waveforms.
    static Waveform xor_of(const Waveform& a, const Waveform& b);

    /// Regions where the waveform is 1, clipped to [0, horizon).
    [[nodiscard]] IntervalSet ones(Time horizon) const;

    friend bool operator==(const Waveform& a, const Waveform& b) = default;

private:
    bool initial_ = false;
    std::vector<Time> transitions_;
};

}  // namespace fastmon
