// Timing-accurate small delay fault simulation.
//
// For a fault (site, transition direction, size delta) and a pattern
// pair, re-simulates the fanout cone of the fault site against the
// fault-free waveforms and yields, per observation point, the XOR of
// fault-free and faulty waveforms — the raw material of detection
// ranges (Sec. III-B).  Only gates whose fanin waveforms actually
// changed are re-evaluated, so cost scales with the affected cone.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/wave_sim.hpp"

namespace fastmon {

/// Location of a small delay fault: a pin of a combinational gate.
/// pin == kOutputPin places the fault at the gate output; otherwise at
/// input pin `pin`.
struct FaultSite {
    static constexpr std::uint32_t kOutputPin = 0xFFFFFFFF;

    GateId gate = kNoGate;
    std::uint32_t pin = kOutputPin;

    friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

/// A small delay fault phi = (site, direction, delta): transitions of
/// the given direction at the site are retarded by delta (Sec. II-A).
struct DelayFault {
    FaultSite site;
    bool slow_rising = true;  ///< true: slow-to-rise; false: slow-to-fall
    Time delta = 0.0;
};

/// Faulty/fault-free difference at one observation point.
struct ObserveDiff {
    std::uint32_t observe_index = 0;  ///< index into Netlist::observe_points()
    Waveform diff;                    ///< XOR(fault-free, faulty) at op.signal
};

class FaultSim {
public:
    explicit FaultSim(const WaveSim& wave_sim);

    /// Re-simulates `fault` against the fault-free waveforms `good`
    /// (as produced by WaveSim::simulate for the same pattern pair).
    /// Returns the non-empty difference waveforms per observation point.
    [[nodiscard]] std::vector<ObserveDiff> simulate(
        const DelayFault& fault, std::span<const Waveform> good) const;

    /// Cheap necessary condition for fault activation: the signal at the
    /// fault site has at least one transition in the slow direction.
    [[nodiscard]] bool activated(const DelayFault& fault,
                                 std::span<const Waveform> good) const;

private:
    /// Waveform of the signal at the fault site (gate output for output
    /// faults, driving fanin for input-pin faults).
    [[nodiscard]] const Waveform& site_signal(
        const FaultSite& site, std::span<const Waveform> good) const;

    const WaveSim* wave_sim_;
};

}  // namespace fastmon
