// Timing-accurate small delay fault simulation.
//
// For a fault (site, transition direction, size delta) and a pattern
// pair, re-simulates the fanout cone of the fault site against the
// fault-free waveforms and yields, per observation point, the XOR of
// fault-free and faulty waveforms — the raw material of detection
// ranges (Sec. III-B).  Only gates whose fanin waveforms actually
// changed are re-evaluated, so cost scales with the affected cone.
//
// Hot-path plumbing (the engine runs one simulate() per activated
// (fault, pattern) pair, millions on the larger benches):
//   * ConeCache memoizes Netlist::fanout_cone per fault-site gate; a
//     cone is shared by both transition directions of a site and by
//     every pattern, so the traversal + sort happens once per site.
//   * FaultSimScratch holds the faulty-waveform overlay as an
//     epoch-stamped dense array indexed by GateId: membership tests
//     are one load, and a new simulation "clears" the overlay by
//     bumping the epoch instead of deallocating.  One scratch per
//     thread; waveform buffers are recycled across calls.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/wave_sim.hpp"

namespace fastmon {

/// Location of a small delay fault: a pin of a combinational gate.
/// pin == kOutputPin places the fault at the gate output; otherwise at
/// input pin `pin`.
struct FaultSite {
    static constexpr std::uint32_t kOutputPin = 0xFFFFFFFF;

    GateId gate = kNoGate;
    std::uint32_t pin = kOutputPin;

    friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

/// A small delay fault phi = (site, direction, delta): transitions of
/// the given direction at the site are retarded by delta (Sec. II-A).
struct DelayFault {
    FaultSite site;
    bool slow_rising = true;  ///< true: slow-to-rise; false: slow-to-fall
    Time delta = 0.0;
};

/// Faulty/fault-free difference at one observation point.
struct ObserveDiff {
    std::uint32_t observe_index = 0;  ///< index into Netlist::observe_points()
    Waveform diff;                    ///< XOR(fault-free, faulty) at op.signal
};

/// Gate whose output waveform carries the fault effect of `site`:
/// the site gate itself for output faults, the driving fanin for
/// input-pin faults.
[[nodiscard]] GateId fault_site_signal(const Netlist& netlist,
                                       const FaultSite& site);

/// Thread-safe memo of Netlist::fanout_cone keyed by gate.  Entries are
/// built lazily on first request and shared afterwards; concurrent
/// first requests race benignly (one result is published, the others
/// are discarded).
class ConeCache {
public:
    explicit ConeCache(const Netlist& netlist);
    ~ConeCache();

    ConeCache(const ConeCache&) = delete;
    ConeCache& operator=(const ConeCache&) = delete;

    [[nodiscard]] const std::vector<GateId>& cone(GateId gate) const;

    /// Number of cones materialized so far.
    [[nodiscard]] std::size_t materialized() const;

private:
    const Netlist* netlist_;
    mutable std::vector<std::atomic<const std::vector<GateId>*>> slots_;
};

/// Per-thread scratch state of the fault-simulation hot path: the dense
/// epoch-stamped faulty-waveform overlay plus recycled buffers.  Not
/// thread-safe; use one instance per worker.
class FaultSimScratch {
public:
    FaultSimScratch() = default;

    /// Gates the simulator re-evaluated through this scratch (cheap
    /// perf counter, monotone across calls).
    [[nodiscard]] std::uint64_t gates_evaluated() const {
        return gates_evaluated_;
    }

private:
    friend class FaultSim;

    void begin_epoch(std::size_t num_gates);
    [[nodiscard]] bool has(GateId id) const {
        return stamp_[id] == epoch_;
    }
    Waveform& put(GateId id) {
        stamp_[id] = epoch_;
        return overlay_[id];
    }

    std::vector<Waveform> overlay_;
    std::vector<std::uint32_t> stamp_;
    std::uint32_t epoch_ = 0;
    std::vector<const Waveform*> fanin_waves_;
    std::vector<GateId> cone_storage_;  ///< used only without a ConeCache
    std::uint64_t gates_evaluated_ = 0;
};

class FaultSim {
public:
    /// `cones` (optional) shares memoized fanout cones across FaultSim
    /// instances and threads; without it every simulate() call
    /// recomputes the cone of its site.
    explicit FaultSim(const WaveSim& wave_sim,
                      const ConeCache* cones = nullptr);

    /// Re-simulates `fault` against the fault-free waveforms `good`
    /// (as produced by WaveSim::simulate for the same pattern pair).
    /// Returns the non-empty difference waveforms per observation point.
    [[nodiscard]] std::vector<ObserveDiff> simulate(
        const DelayFault& fault, std::span<const Waveform> good) const;

    /// Hot-path variant: identical result, state kept in `scratch`
    /// (dense overlay, no per-call allocation).
    [[nodiscard]] std::vector<ObserveDiff> simulate(
        const DelayFault& fault, std::span<const Waveform> good,
        FaultSimScratch& scratch) const;

    /// Cheap necessary condition for fault activation: the signal at the
    /// fault site has at least one transition in the slow direction.
    [[nodiscard]] bool activated(const DelayFault& fault,
                                 std::span<const Waveform> good) const;

private:
    /// Waveform of the signal at the fault site (gate output for output
    /// faults, driving fanin for input-pin faults).
    [[nodiscard]] const Waveform& site_signal(
        const FaultSite& site, std::span<const Waveform> good) const;

    const WaveSim* wave_sim_;
    const ConeCache* cones_;
};

}  // namespace fastmon
