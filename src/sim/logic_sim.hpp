// Zero-delay logic simulation of the combinational core.
//
// Used for good-machine final values, ATPG random phases (64 patterns
// per call, one per bit lane) and fault-activation pre-checks.
//
// Single-bit values are carried as std::uint8_t (0/1) so that plain
// spans and memcpy-able buffers work (std::vector<bool> has no data()).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace fastmon {

/// 0/1 logic value.
using Bit = std::uint8_t;

class LogicSim {
public:
    explicit LogicSim(const Netlist& netlist);

    /// Evaluates all nodes for one source assignment.
    /// `sources` is indexed like Netlist::comb_sources().
    /// Returns one value per node (Output/Dff nodes carry their fanin
    /// value; for Dff that is the next-state).
    [[nodiscard]] std::vector<Bit> eval(std::span<const Bit> sources) const;

    /// 64-way bit-parallel evaluation (bit k of every word belongs to
    /// pattern k).
    [[nodiscard]] std::vector<std::uint64_t> eval64(
        std::span<const std::uint64_t> sources) const;

    /// Per-node attainable-value masks of a 64-wide ternary evaluation
    /// (bit k of every word belongs to pattern k).
    struct TernaryValues {
        std::vector<std::uint64_t> can0;  ///< node may be 0 at some time
        std::vector<std::uint64_t> can1;  ///< node may be 1 at some time
    };

    /// 64-way bit-parallel ternary evaluation: each source carries the
    /// set of values it attains during its v1 -> v2 transition (both
    /// bits set = toggling source = X).  The result over-approximates,
    /// per node and lane, the values the timed waveform can attain —
    /// the basis of the hazard-aware fault-activation pre-screen.
    [[nodiscard]] TernaryValues eval64_ternary(
        std::span<const std::uint64_t> sources_can0,
        std::span<const std::uint64_t> sources_can1) const;

    [[nodiscard]] const Netlist& netlist() const { return *netlist_; }

private:
    const Netlist* netlist_;
};

}  // namespace fastmon
