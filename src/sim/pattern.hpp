// Test pattern pairs.
//
// Delay tests apply two vectors: v1 initializes the circuit, v2 launches
// transitions at t = 0 (enhanced-scan application; see DESIGN.md for the
// substitution note versus the paper's commercial launch-on-capture
// sets).  Vectors are indexed like Netlist::comb_sources().
#pragma once

#include <cstdint>
#include <vector>

#include "sim/logic_sim.hpp"

namespace fastmon {

struct PatternPair {
    std::vector<Bit> v1;
    std::vector<Bit> v2;

    friend bool operator==(const PatternPair&, const PatternPair&) = default;
};

}  // namespace fastmon
