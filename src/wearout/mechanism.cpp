#include "wearout/mechanism.hpp"

#include <cmath>

namespace fastmon {

namespace {

constexpr double kBoltzmannEv = 8.617333262e-5;  // eV / K
constexpr double kCelsiusToKelvin = 273.15;

bool finite_number(const Json* j) { return j && j->is_number() &&
                                           std::isfinite(j->as_number()); }

}  // namespace

const char* mechanism_name(MechanismKind kind) {
    switch (kind) {
        case MechanismKind::LegacyPowerLaw: return "legacy_powerlaw";
        case MechanismKind::Nbti: return "nbti";
        case MechanismKind::Hci: return "hci";
        case MechanismKind::Em: return "em";
        case MechanismKind::Tddb: return "tddb";
    }
    return "unknown";
}

std::optional<MechanismKind> mechanism_from_name(std::string_view name) {
    for (const MechanismKind kind :
         {MechanismKind::LegacyPowerLaw, MechanismKind::Nbti,
          MechanismKind::Hci, MechanismKind::Em, MechanismKind::Tddb}) {
        if (name == mechanism_name(kind)) return kind;
    }
    return std::nullopt;
}

MechanismConfig MechanismConfig::defaults(MechanismKind kind) {
    MechanismConfig cfg;
    cfg.kind = kind;
    switch (kind) {
        case MechanismKind::LegacyPowerLaw:
            // Curve parameters live on the device's AgingModel; only
            // the duty-cycle rate scaling applies.
            cfg.amplitude = 0.0;
            cfg.ea_ev = 0.0;
            cfg.voltage_gamma = 0.0;
            break;
        case MechanismKind::Nbti:
            // Classic ~t^0.35 threshold-shift fit; strongly thermally
            // and voltage accelerated, stressed while the output holds.
            cfg.amplitude = 0.22;
            cfg.time_exponent = 0.35;
            cfg.ea_ev = 0.55;
            cfg.voltage_gamma = 6.0;
            break;
        case MechanismKind::Hci:
            // Switching-edge damage; mildly *anti*-Arrhenius (worst at
            // cold), strongly voltage-driven, scales with clock rate.
            cfg.amplitude = 0.12;
            cfg.time_exponent = 0.50;
            cfg.ea_ev = -0.10;
            cfg.voltage_gamma = 8.0;
            break;
        case MechanismKind::Em:
            // Current-density driven (Black's equation flavor):
            // near-linear in stress time, hot interconnect dominated.
            cfg.amplitude = 0.08;
            cfg.time_exponent = 1.0;
            cfg.ea_ev = 0.80;
            cfg.voltage_gamma = 0.0;
            break;
        case MechanismKind::Tddb:
            // Oxide wear-out: field (voltage) dominated with thermal
            // acceleration; static-bias stressed.
            cfg.amplitude = 0.10;
            cfg.time_exponent = 0.40;
            cfg.ea_ev = 0.60;
            cfg.voltage_gamma = 10.0;
            break;
    }
    return cfg;
}

double MechanismConfig::rate(const OperatingPoint& op,
                             const OperatingPoint& ref) const {
    // Rate 1 at the reference point by construction: every factor
    // below evaluates to exactly 1.0 when op == ref (duty included),
    // which is what keeps a reference-pinned mission bit-identical to
    // the profile-free path.
    if (kind == MechanismKind::LegacyPowerLaw) return op.duty_cycle;
    double r = op.duty_cycle;
    if (ea_ev != 0.0) {
        const double t_op = op.temperature_c + kCelsiusToKelvin;
        const double t_ref = ref.temperature_c + kCelsiusToKelvin;
        r *= std::exp((ea_ev / kBoltzmannEv) * (1.0 / t_ref - 1.0 / t_op));
    }
    if (voltage_gamma != 0.0) {
        r *= std::exp(voltage_gamma * (op.vdd - ref.vdd));
    }
    if (kind == MechanismKind::Hci || kind == MechanismKind::Em) {
        r *= op.frequency_ghz / ref.frequency_ghz;
    }
    return r;
}

double MechanismConfig::stress_integral(double tau) const {
    if (!(tau > 0.0)) return 0.0;
    return std::pow(tau / t_ref_years, time_exponent);
}

StressKind MechanismConfig::stress_kind() const {
    switch (kind) {
        case MechanismKind::Nbti:
        case MechanismKind::Tddb:
            return StressKind::Static;
        case MechanismKind::LegacyPowerLaw:
        case MechanismKind::Hci:
        case MechanismKind::Em:
            break;
    }
    return StressKind::Toggle;
}

Json MechanismConfig::to_json() const {
    Json j = Json::object();
    j.set("kind", mechanism_name(kind));
    j.set("amplitude", amplitude);
    j.set("time_exponent", time_exponent);
    j.set("t_ref_years", t_ref_years);
    j.set("ea_ev", ea_ev);
    j.set("voltage_gamma", voltage_gamma);
    j.set("weibull_beta", weibull_beta);
    return j;
}

std::optional<MechanismConfig> MechanismConfig::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* kind = j.find("kind");
    const Json* amplitude = j.find("amplitude");
    const Json* exponent = j.find("time_exponent");
    const Json* t_ref = j.find("t_ref_years");
    const Json* ea = j.find("ea_ev");
    const Json* gamma = j.find("voltage_gamma");
    const Json* beta = j.find("weibull_beta");
    if (!kind || !kind->is_string() || !finite_number(amplitude) ||
        !finite_number(exponent) || !finite_number(t_ref) ||
        !finite_number(ea) || !finite_number(gamma) ||
        !finite_number(beta)) {
        return std::nullopt;
    }
    const auto parsed_kind = mechanism_from_name(kind->as_string());
    if (!parsed_kind) return std::nullopt;
    MechanismConfig cfg;
    cfg.kind = *parsed_kind;
    cfg.amplitude = amplitude->as_number();
    cfg.time_exponent = exponent->as_number();
    cfg.t_ref_years = t_ref->as_number();
    cfg.ea_ev = ea->as_number();
    cfg.voltage_gamma = gamma->as_number();
    cfg.weibull_beta = beta->as_number();
    if (cfg.amplitude < 0.0 || cfg.t_ref_years <= 0.0 ||
        cfg.weibull_beta <= 0.0) {
        return std::nullopt;
    }
    return cfg;
}

}  // namespace fastmon
