// Per-gate activity extraction from the waveform simulator.
//
// A mechanism's per-gate stress is not uniform: hot-carrier damage
// follows switching activity, bias-temperature instability follows the
// fraction of time a node holds its stressed level.  This module runs
// the timing-accurate WaveSim over a deterministic set of random
// pattern pairs (a design-time characterization, one per campaign) and
// distills two per-gate statistics: a toggle rate and a static
// output-high probability, each normalized to mean 1.0 over the
// combinational gates so mechanism amplitudes keep their calibrated
// meaning regardless of circuit size or pattern count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic_sim.hpp"
#include "timing/delay_model.hpp"
#include "util/json.hpp"

namespace fastmon {

struct ActivityConfig {
    enum class Mode : std::uint8_t {
        /// Characterize with WaveSim over random pattern pairs.
        Waveform,
        /// Unit stress on every gate: mechanisms differ only in their
        /// time/temperature laws.  With only the legacy mechanism this
        /// reproduces the profile-free degradation bit-for-bit.
        Constant,
    };

    Mode mode = Mode::Waveform;
    /// Pattern pairs simulated in Waveform mode.  A design-time cost
    /// paid once per campaign, not per device.
    std::size_t num_pattern_pairs = 32;
    /// Root of the characterization pattern stream — deliberately
    /// separate from the campaign seed so changing the population does
    /// not re-characterize the design.
    std::uint64_t seed = 0xAC71F1ULL;

    [[nodiscard]] Json to_json() const;
    static std::optional<ActivityConfig> from_json(const Json& j);

    friend bool operator==(const ActivityConfig&,
                           const ActivityConfig&) = default;
};

/// One explicit characterization stimulus (both vectors indexed like
/// Netlist::comb_sources()).
struct ActivityPattern {
    std::vector<Bit> v1;
    std::vector<Bit> v2;
};

/// Raw per-gate counters over a pattern set — the unit-testable core.
struct ActivityCounts {
    /// Waveform transitions per gate (netlist id), summed over pairs.
    std::vector<std::uint64_t> toggles;
    /// Pairs whose settled gate value was 1.
    std::vector<std::uint64_t> ones;
    std::size_t num_pairs = 0;
};

/// Simulates each pattern pair and counts toggles / settled ones for
/// every node.
[[nodiscard]] ActivityCounts count_activity(
    const Netlist& netlist, const DelayAnnotation& delays,
    std::span<const ActivityPattern> patterns);

/// Normalized per-gate stress factors (indexed by netlist gate id;
/// non-combinational nodes carry 1.0 and are never read).
struct ActivityProfile {
    std::vector<double> toggle_rate;  ///< mean 1.0 over comb gates
    std::vector<double> static_prob;  ///< mean 1.0 over comb gates
};

/// Derives the profile for a design: Constant mode yields all-ones;
/// Waveform mode generates `num_pattern_pairs` random pairs from
/// Prng::stream(seed, pair_index), counts, and normalizes.  A
/// statistic that never fires anywhere (e.g. a constant circuit)
/// degrades to all-ones rather than dividing by zero.
[[nodiscard]] ActivityProfile extract_activity(const Netlist& netlist,
                                               const DelayAnnotation& delays,
                                               const ActivityConfig& config);

}  // namespace fastmon
