// Wear-out model: mechanisms x mission x per-gate activity, resolved
// once per campaign.
//
// The WearoutModel is the immutable design-time artifact the rollout
// shares across every device: the resolved mechanism registry, each
// mechanism's per-phase stress rate under the mission profile, the
// activity-derived per-gate stress factors, and the Weibull severity
// normalization.  Per-device state (severity scales, jittered stress
// packing) lives in DeviceDegradation, which composes all mechanism
// contributions into the one DelayDelta both the scalar and the
// batched rollout evaluate — the bit-identity contract is unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "timing/delay_model.hpp"
#include "util/json.hpp"
#include "wearout/activity.hpp"
#include "wearout/mechanism.hpp"
#include "wearout/mission.hpp"

namespace fastmon {

struct WearoutConfig {
    /// Off by default: the campaign uses the legacy AgingModel path
    /// untouched, preserving seed-state outputs bit-for-bit.
    bool enabled = false;
    /// Resolved mission profile (the CLI resolves --mission-profile
    /// before run_campaign so the canonical string never does file
    /// I/O).  An empty phase list means reference conditions forever.
    MissionProfile mission;
    /// Mechanism registry; empty selects the default set: the legacy
    /// power-law knob plus NBTI / HCI / EM / TDDB at their calibrated
    /// defaults.
    std::vector<MechanismConfig> mechanisms;
    ActivityConfig activity;
    /// Stress reference all mechanism rates are relative to.
    OperatingPoint reference;

    /// The registry with the empty-means-default rule applied.
    [[nodiscard]] std::vector<MechanismConfig> resolved_mechanisms() const;

    /// Appends every fingerprint-relevant field to the campaign
    /// canonical string (called only when enabled, so legacy
    /// fingerprints — and their checkpoints — stay valid).
    void append_canonical(std::string& out) const;

    friend bool operator==(const WearoutConfig&,
                           const WearoutConfig&) = default;
};

class WearoutModel {
public:
    /// Resolves the config against a design: characterizes activity on
    /// the nominal annotation and precomputes per-mechanism per-phase
    /// stress rates.  Keeps no reference to `nominal`.
    WearoutModel(const Netlist& netlist, const DelayAnnotation& nominal,
                 const WearoutConfig& config);

    [[nodiscard]] std::size_t num_mechanisms() const {
        return mechanisms_.size();
    }
    [[nodiscard]] const MechanismConfig& mechanism(std::size_t m) const {
        return mechanisms_[m];
    }
    [[nodiscard]] const MissionProfile& mission() const {
        return config_.mission;
    }

    /// Equivalent stress time of mechanism `m` after `years` under the
    /// mission (== max(years, 0) for an empty mission).
    [[nodiscard]] double equivalent_years(std::size_t m, double years) const;

    /// Per-gate normalized stress of mechanism `m`, indexed by netlist
    /// gate id (toggle rate or static probability per its StressKind).
    [[nodiscard]] const std::vector<double>& gate_stress(
        std::size_t m) const;

    /// Per-device mean-one Weibull severity scales, one per mechanism,
    /// drawn from Prng::stream(device_seed, tag + m).  The legacy
    /// mechanism gets exactly 1.0 with no draw (its spread is the
    /// population's amplitude jitter), so enabling wear-out perturbs
    /// no existing random stream.
    void device_scales(std::uint64_t device_seed,
                       std::vector<double>& out) const;

    /// Report block: mission, reference, activity config, mechanisms.
    [[nodiscard]] Json to_json() const;

private:
    WearoutConfig config_;
    std::vector<MechanismConfig> mechanisms_;
    /// rate of mechanism m in phase p at [m * phases + p].
    std::vector<double> phase_rates_;
    /// 1 / Gamma(1 + 1/beta) per mechanism (mean-one normalization).
    std::vector<double> weibull_norm_;
    ActivityProfile activity_;
};

}  // namespace fastmon
