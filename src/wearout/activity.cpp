#include "wearout/activity.hpp"

#include <cmath>

#include "sim/wave_sim.hpp"
#include "util/prng.hpp"

namespace fastmon {

namespace {

/// Normalizes raw per-gate counts to mean 1.0 over the combinational
/// gates, writing into `out` (all nodes, non-combinational stay 1.0).
void normalize(const Netlist& netlist,
               const std::vector<std::uint64_t>& counts,
               std::vector<double>& out) {
    out.assign(netlist.size(), 1.0);
    double sum = 0.0;
    std::size_t n = 0;
    for (GateId id = 0; id < netlist.size(); ++id) {
        if (!is_combinational(netlist.gate(id).type)) continue;
        sum += static_cast<double>(counts[id]);
        ++n;
    }
    if (n == 0 || sum <= 0.0) return;  // degenerate: unit stress
    const double mean = sum / static_cast<double>(n);
    for (GateId id = 0; id < netlist.size(); ++id) {
        if (!is_combinational(netlist.gate(id).type)) continue;
        out[id] = static_cast<double>(counts[id]) / mean;
    }
}

}  // namespace

Json ActivityConfig::to_json() const {
    Json j = Json::object();
    j.set("mode", mode == Mode::Waveform ? "waveform" : "constant");
    j.set("num_pattern_pairs", num_pattern_pairs);
    j.set("seed", seed);
    return j;
}

std::optional<ActivityConfig> ActivityConfig::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* mode = j.find("mode");
    const Json* pairs = j.find("num_pattern_pairs");
    const Json* seed = j.find("seed");
    if (!mode || !mode->is_string() || !pairs || !pairs->is_number() ||
        !seed || !seed->is_number()) {
        return std::nullopt;
    }
    ActivityConfig cfg;
    if (mode->as_string() == "waveform") {
        cfg.mode = Mode::Waveform;
    } else if (mode->as_string() == "constant") {
        cfg.mode = Mode::Constant;
    } else {
        return std::nullopt;
    }
    if (pairs->as_number() < 1.0 || !std::isfinite(pairs->as_number())) {
        return std::nullopt;
    }
    cfg.num_pattern_pairs = static_cast<std::size_t>(pairs->as_number());
    cfg.seed = static_cast<std::uint64_t>(seed->as_number());
    return cfg;
}

ActivityCounts count_activity(const Netlist& netlist,
                              const DelayAnnotation& delays,
                              std::span<const ActivityPattern> patterns) {
    ActivityCounts counts;
    counts.toggles.assign(netlist.size(), 0);
    counts.ones.assign(netlist.size(), 0);
    counts.num_pairs = patterns.size();
    const WaveSim sim(netlist, delays);
    for (const ActivityPattern& p : patterns) {
        const std::vector<Waveform> waves = sim.simulate(p.v1, p.v2);
        for (GateId id = 0; id < netlist.size(); ++id) {
            counts.toggles[id] +=
                static_cast<std::uint64_t>(waves[id].num_transitions());
            if (waves[id].final()) ++counts.ones[id];
        }
    }
    return counts;
}

ActivityProfile extract_activity(const Netlist& netlist,
                                 const DelayAnnotation& delays,
                                 const ActivityConfig& config) {
    ActivityProfile profile;
    if (config.mode == ActivityConfig::Mode::Constant) {
        profile.toggle_rate.assign(netlist.size(), 1.0);
        profile.static_prob.assign(netlist.size(), 1.0);
        return profile;
    }
    const std::size_t width = netlist.comb_sources().size();
    std::vector<ActivityPattern> patterns(config.num_pattern_pairs);
    for (std::size_t k = 0; k < patterns.size(); ++k) {
        // One substream per pair: the pattern set is a pure function of
        // (seed, pair index), independent of generation order.
        Prng rng = Prng::stream(config.seed, static_cast<std::uint64_t>(k));
        patterns[k].v1.resize(width);
        patterns[k].v2.resize(width);
        for (std::size_t s = 0; s < width; ++s) {
            patterns[k].v1[s] = rng.chance(0.5) ? 1 : 0;
            patterns[k].v2[s] = rng.chance(0.5) ? 1 : 0;
        }
    }
    const ActivityCounts counts = count_activity(netlist, delays, patterns);
    normalize(netlist, counts.toggles, profile.toggle_rate);
    normalize(netlist, counts.ones, profile.static_prob);
    return profile;
}

}  // namespace fastmon
