#include "wearout/wearout.hpp"

#include <cmath>
#include <cstdio>

#include "util/prng.hpp"

namespace fastmon {

namespace {

/// Stream tag of the per-device Weibull severity draws (offset by the
/// mechanism index).  Distinct from the population stream (0xDEC1CE)
/// and the per-gate jitter seed xor (0xA61713), so enabling wear-out
/// leaves every legacy draw untouched.
constexpr std::uint64_t kWeibullStreamTag = 0x3EA512B0ULL;

void append_number(std::string& out, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g;", v);
    out += buf;
}

void append_point(std::string& out, const OperatingPoint& op) {
    append_number(out, op.temperature_c);
    append_number(out, op.vdd);
    append_number(out, op.frequency_ghz);
    append_number(out, op.duty_cycle);
}

}  // namespace

std::vector<MechanismConfig> WearoutConfig::resolved_mechanisms() const {
    if (!mechanisms.empty()) return mechanisms;
    std::vector<MechanismConfig> defaults;
    for (const MechanismKind kind :
         {MechanismKind::LegacyPowerLaw, MechanismKind::Nbti,
          MechanismKind::Hci, MechanismKind::Em, MechanismKind::Tddb}) {
        defaults.push_back(MechanismConfig::defaults(kind));
    }
    return defaults;
}

void WearoutConfig::append_canonical(std::string& out) const {
    out += "wearout;";
    out += mission.name;
    out += ';';
    append_number(out, mission.cycle ? 1.0 : 0.0);
    for (const MissionPhase& phase : mission.phases) {
        out += phase.name;
        out += ';';
        append_number(out, phase.duration_years);
        append_point(out, phase.op);
    }
    for (const MechanismConfig& m : resolved_mechanisms()) {
        out += mechanism_name(m.kind);
        out += ';';
        append_number(out, m.amplitude);
        append_number(out, m.time_exponent);
        append_number(out, m.t_ref_years);
        append_number(out, m.ea_ev);
        append_number(out, m.voltage_gamma);
        append_number(out, m.weibull_beta);
    }
    out += activity.mode == ActivityConfig::Mode::Waveform ? "waveform;"
                                                           : "constant;";
    append_number(out, static_cast<double>(activity.num_pattern_pairs));
    append_number(out, static_cast<double>(activity.seed));
    append_point(out, reference);
}

WearoutModel::WearoutModel(const Netlist& netlist,
                           const DelayAnnotation& nominal,
                           const WearoutConfig& config)
    : config_(config),
      mechanisms_(config.resolved_mechanisms()),
      activity_(extract_activity(netlist, nominal, config.activity)) {
    const std::size_t num_phases = config_.mission.phases.size();
    phase_rates_.resize(mechanisms_.size() * num_phases);
    weibull_norm_.resize(mechanisms_.size());
    for (std::size_t m = 0; m < mechanisms_.size(); ++m) {
        for (std::size_t p = 0; p < num_phases; ++p) {
            phase_rates_[m * num_phases + p] = mechanisms_[m].rate(
                config_.mission.phases[p].op, config_.reference);
        }
        weibull_norm_[m] =
            1.0 / std::tgamma(1.0 + 1.0 / mechanisms_[m].weibull_beta);
    }
}

double WearoutModel::equivalent_years(std::size_t m, double years) const {
    const std::size_t num_phases = config_.mission.phases.size();
    if (num_phases == 0) return years > 0.0 ? years : 0.0;
    return config_.mission.equivalent_years(
        years, std::span<const double>(
                   phase_rates_.data() + m * num_phases, num_phases));
}

const std::vector<double>& WearoutModel::gate_stress(std::size_t m) const {
    return mechanisms_[m].stress_kind() == StressKind::Toggle
               ? activity_.toggle_rate
               : activity_.static_prob;
}

void WearoutModel::device_scales(std::uint64_t device_seed,
                                 std::vector<double>& out) const {
    out.resize(mechanisms_.size());
    for (std::size_t m = 0; m < mechanisms_.size(); ++m) {
        if (mechanisms_[m].kind == MechanismKind::LegacyPowerLaw) {
            out[m] = 1.0;
            continue;
        }
        // Mean-one Weibull via inverse CDF: one substream per
        // (device, mechanism), so the draw is independent of mechanism
        // order elsewhere and of every pre-existing stream.
        Prng rng = Prng::stream(device_seed, kWeibullStreamTag + m);
        const double u = rng.next_double();
        out[m] = std::pow(-std::log1p(-u),
                          1.0 / mechanisms_[m].weibull_beta) *
                 weibull_norm_[m];
    }
}

Json WearoutModel::to_json() const {
    Json j = Json::object();
    j.set("mission", config_.mission.to_json());
    j.set("reference", config_.reference.to_json());
    j.set("activity", config_.activity.to_json());
    Json mechs = Json::array();
    for (const MechanismConfig& m : mechanisms_) {
        mechs.push_back(m.to_json());
    }
    j.set("mechanisms", std::move(mechs));
    return j;
}

}  // namespace fastmon
