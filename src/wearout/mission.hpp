// Mission profiles: operating-condition schedules over a device's
// deployed lifetime.
//
// A wear-out mechanism's stress rate depends on where the silicon is
// deployed — a 24/7 server at a steady 65 C ages differently from an
// automotive ECU thermal-cycling between -40 C and 105 C or a mobile
// SoC that is mostly idle.  A MissionProfile sequences OperatingPoints
// (temperature, voltage, frequency, duty cycle) over calendar time;
// each mechanism integrates its stress rate over the schedule into an
// equivalent stress time, which then drives its power-law degradation.
// Profiles are pure data (JSON round-trippable) so campaigns can load
// custom schedules from disk next to the built-in trio.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace fastmon {

/// One steady operating condition.  The reference point (defaults) is
/// the condition mechanism amplitudes are calibrated at: stress rates
/// are relative to it, so a profile pinned at the reference point ages
/// exactly like the profile-free legacy model.
struct OperatingPoint {
    double temperature_c = 55.0;  ///< junction temperature
    double vdd = 0.80;            ///< supply voltage in volts
    double frequency_ghz = 1.0;   ///< operating clock
    double duty_cycle = 1.0;      ///< active fraction of wall time

    [[nodiscard]] Json to_json() const;
    static std::optional<OperatingPoint> from_json(const Json& j);

    friend bool operator==(const OperatingPoint&,
                           const OperatingPoint&) = default;
};

/// A named stretch of the mission at one operating point.
struct MissionPhase {
    std::string name;
    double duration_years = 1.0;
    OperatingPoint op;

    [[nodiscard]] Json to_json() const;
    static std::optional<MissionPhase> from_json(const Json& j);

    friend bool operator==(const MissionPhase&,
                           const MissionPhase&) = default;
};

/// A phase schedule over the lifetime.  With `cycle` set the schedule
/// repeats end-to-end (thermal cycling, diurnal load); otherwise the
/// final phase holds for the rest of the horizon.
struct MissionProfile {
    std::string name;
    std::vector<MissionPhase> phases;
    bool cycle = true;

    /// Wall-clock length of one pass through the schedule.
    [[nodiscard]] double cycle_years() const;

    /// Equivalent stress time accumulated by `years` given one
    /// per-phase stress rate (years of reference-condition stress per
    /// wall-clock year in that phase).  phase_rates.size() must equal
    /// phases.size().  Full cycles are folded in closed form so a
    /// 15-year horizon over a week-scale schedule stays O(phases).
    [[nodiscard]] double equivalent_years(
        double years, std::span<const double> phase_rates) const;

    /// The operating point active at `years` (first phase at t = 0;
    /// boundaries belong to the later phase).
    [[nodiscard]] const OperatingPoint& at(double years) const;

    [[nodiscard]] Json to_json() const;
    static std::optional<MissionProfile> from_json(const Json& j);

    friend bool operator==(const MissionProfile&,
                           const MissionProfile&) = default;
};

/// The built-in profiles (server_247, automotive_thermal_cycling,
/// mobile_bursty), in a fixed presentation order.
[[nodiscard]] std::span<const MissionProfile> builtin_mission_profiles();

/// Built-in profile by name; nullptr when unknown.
[[nodiscard]] const MissionProfile* find_mission_profile(
    std::string_view name);

/// Resolves `spec` to a profile: a built-in name, or a path to a JSON
/// profile file.  Throws a Diagnostic ("wearout" source) when the spec
/// matches neither, the file is unreadable, or the JSON is malformed.
[[nodiscard]] MissionProfile load_mission_profile(const std::string& spec);

/// Human-readable catalog of the built-ins (--list-profiles output):
/// one block per profile with its phase schedule.
[[nodiscard]] std::string describe_mission_profiles();

}  // namespace fastmon
