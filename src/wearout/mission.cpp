#include "wearout/mission.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/diagnostic.hpp"

namespace fastmon {

namespace {

bool finite_number(const Json* j) { return j && j->is_number() &&
                                           std::isfinite(j->as_number()); }

[[noreturn]] void reject(const std::string& what) {
    throw DiagnosticBuilder("wearout").message(what).build();
}

}  // namespace

Json OperatingPoint::to_json() const {
    Json j = Json::object();
    j.set("temperature_c", temperature_c);
    j.set("vdd", vdd);
    j.set("frequency_ghz", frequency_ghz);
    j.set("duty_cycle", duty_cycle);
    return j;
}

std::optional<OperatingPoint> OperatingPoint::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* temp = j.find("temperature_c");
    const Json* vdd = j.find("vdd");
    const Json* freq = j.find("frequency_ghz");
    const Json* duty = j.find("duty_cycle");
    if (!finite_number(temp) || !finite_number(vdd) || !finite_number(freq) ||
        !finite_number(duty)) {
        return std::nullopt;
    }
    OperatingPoint op;
    op.temperature_c = temp->as_number();
    op.vdd = vdd->as_number();
    op.frequency_ghz = freq->as_number();
    op.duty_cycle = duty->as_number();
    // Physical sanity: temperatures below absolute zero, non-positive
    // rails/clocks, or duty outside [0, 1] are config bugs, not data.
    if (op.temperature_c <= -273.15 || op.vdd <= 0.0 ||
        op.frequency_ghz <= 0.0 || op.duty_cycle < 0.0 ||
        op.duty_cycle > 1.0) {
        return std::nullopt;
    }
    return op;
}

Json MissionPhase::to_json() const {
    Json j = Json::object();
    j.set("name", name);
    j.set("duration_years", duration_years);
    j.set("op", op.to_json());
    return j;
}

std::optional<MissionPhase> MissionPhase::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* name = j.find("name");
    const Json* duration = j.find("duration_years");
    const Json* op = j.find("op");
    if (!name || !name->is_string() || !finite_number(duration) || !op) {
        return std::nullopt;
    }
    MissionPhase phase;
    phase.name = name->as_string();
    phase.duration_years = duration->as_number();
    if (phase.duration_years <= 0.0) return std::nullopt;
    const auto parsed = OperatingPoint::from_json(*op);
    if (!parsed) return std::nullopt;
    phase.op = *parsed;
    return phase;
}

double MissionProfile::cycle_years() const {
    double total = 0.0;
    for (const MissionPhase& p : phases) total += p.duration_years;
    return total;
}

double MissionProfile::equivalent_years(
    double years, std::span<const double> phase_rates) const {
    if (!(years > 0.0) || phases.empty()) return 0.0;
    double acc = 0.0;
    double remaining = years;
    if (cycle) {
        const double period = cycle_years();
        if (period > 0.0) {
            // Fold whole schedule repetitions in closed form; the walk
            // below only covers the final partial cycle.
            const double full = std::floor(years / period);
            if (full >= 1.0) {
                double per_cycle = 0.0;
                for (std::size_t i = 0; i < phases.size(); ++i) {
                    per_cycle += phases[i].duration_years * phase_rates[i];
                }
                acc = full * per_cycle;
                remaining = years - full * period;
            }
        }
    }
    for (std::size_t i = 0; i < phases.size() && remaining > 0.0; ++i) {
        const bool open_tail = !cycle && i + 1 == phases.size();
        const double dt = open_tail
                              ? remaining
                              : std::min(remaining, phases[i].duration_years);
        acc += dt * phase_rates[i];
        remaining -= dt;
    }
    if (remaining > 0.0) {
        // Floating-point sliver past the folded cycles lands at the
        // start of the next repetition.
        acc += remaining * phase_rates[0];
    }
    return acc;
}

const OperatingPoint& MissionProfile::at(double years) const {
    static const OperatingPoint kReference{};
    if (phases.empty()) return kReference;
    double t = std::max(years, 0.0);
    const double period = cycle_years();
    if (cycle && period > 0.0) t -= std::floor(t / period) * period;
    double edge = 0.0;
    for (const MissionPhase& p : phases) {
        edge += p.duration_years;
        if (t < edge) return p.op;
    }
    return phases.back().op;
}

Json MissionProfile::to_json() const {
    Json j = Json::object();
    j.set("name", name);
    j.set("cycle", cycle);
    Json arr = Json::array();
    for (const MissionPhase& p : phases) arr.push_back(p.to_json());
    j.set("phases", std::move(arr));
    return j;
}

std::optional<MissionProfile> MissionProfile::from_json(const Json& j) {
    if (!j.is_object()) return std::nullopt;
    const Json* name = j.find("name");
    const Json* cycle = j.find("cycle");
    const Json* phases = j.find("phases");
    if (!name || !name->is_string() || !cycle || !cycle->is_bool() ||
        !phases || !phases->is_array() || phases->as_array().empty()) {
        return std::nullopt;
    }
    MissionProfile profile;
    profile.name = name->as_string();
    profile.cycle = cycle->as_bool();
    for (const Json& p : phases->as_array()) {
        const auto parsed = MissionPhase::from_json(p);
        if (!parsed) return std::nullopt;
        profile.phases.push_back(*parsed);
    }
    return profile;
}

std::span<const MissionProfile> builtin_mission_profiles() {
    // One-year schedules, repeated over the horizon.  Operating points
    // are relative to the calibration reference (55 C, 0.80 V, 1 GHz,
    // duty 1): the server barely leaves it, the automotive profile
    // thermal-cycles far above it, the mobile profile idles far below.
    static const std::vector<MissionProfile> kBuiltins = {
        MissionProfile{
            "server_247",
            {
                MissionPhase{"production", 0.75,
                             OperatingPoint{65.0, 0.80, 1.0, 0.95}},
                MissionPhase{"maintenance", 0.25,
                             OperatingPoint{45.0, 0.80, 1.0, 0.30}},
            },
            true},
        MissionProfile{
            "automotive_thermal_cycling",
            {
                MissionPhase{"cold_start", 0.05,
                             OperatingPoint{-20.0, 0.85, 1.0, 0.60}},
                MissionPhase{"highway", 0.10,
                             OperatingPoint{105.0, 0.85, 1.0, 0.90}},
                MissionPhase{"city", 0.15,
                             OperatingPoint{85.0, 0.85, 1.0, 0.70}},
                MissionPhase{"parked", 0.70,
                             OperatingPoint{30.0, 0.85, 1.0, 0.02}},
            },
            true},
        MissionProfile{
            "mobile_bursty",
            {
                MissionPhase{"burst", 0.05,
                             OperatingPoint{85.0, 0.90, 1.5, 1.00}},
                MissionPhase{"active", 0.20,
                             OperatingPoint{45.0, 0.80, 1.0, 0.50}},
                MissionPhase{"idle", 0.75,
                             OperatingPoint{30.0, 0.70, 0.3, 0.05}},
            },
            true},
    };
    return kBuiltins;
}

const MissionProfile* find_mission_profile(std::string_view name) {
    for (const MissionProfile& p : builtin_mission_profiles()) {
        if (p.name == name) return &p;
    }
    return nullptr;
}

MissionProfile load_mission_profile(const std::string& spec) {
    if (const MissionProfile* builtin = find_mission_profile(spec)) {
        return *builtin;
    }
    std::ifstream in(spec);
    if (!in) {
        reject("unknown mission profile '" + spec +
               "' (not a built-in name or readable JSON file; "
               "see --list-profiles)");
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    const auto parsed = Json::parse(text.str(), &error);
    if (!parsed) {
        reject("mission profile file '" + spec + "': " + error);
    }
    const auto profile = MissionProfile::from_json(*parsed);
    if (!profile) {
        reject("mission profile file '" + spec +
               "': not a valid profile (need name, cycle, and a "
               "non-empty phases array of positive durations)");
    }
    return *profile;
}

std::string describe_mission_profiles() {
    std::string out;
    for (const MissionProfile& p : builtin_mission_profiles()) {
        char line[160];
        std::snprintf(line, sizeof line, "%s (%s, %.2f-year schedule)\n",
                      p.name.c_str(),
                      p.cycle ? "cycling" : "holds last phase",
                      p.cycle_years());
        out += line;
        for (const MissionPhase& phase : p.phases) {
            std::snprintf(line, sizeof line,
                          "  %-12s %5.2f y  T=%6.1fC  Vdd=%.2fV  "
                          "f=%.2fGHz  duty=%.2f\n",
                          phase.name.c_str(), phase.duration_years,
                          phase.op.temperature_c, phase.op.vdd,
                          phase.op.frequency_ghz, phase.op.duty_cycle);
            out += line;
        }
    }
    return out;
}

}  // namespace fastmon
