// Failure-mechanism registry: NBTI, HCI, EM, TDDB, and the legacy
// power-law knob as a fifth registered mechanism.
//
// Follows the classic reliability formulations (the oldspot shape):
// each mechanism turns an OperatingPoint into a stress rate relative
// to the calibration reference — Arrhenius temperature acceleration,
// exponential voltage acceleration, duty-cycle (and, for hot-carrier /
// electromigration, switching-frequency) scaling — and integrates that
// rate over the mission into an equivalent stress time tau.  The
// delay-degradation contribution is then a power law in tau with a
// per-device mean-one Weibull severity scale (device-to-device TTF
// variation, beta = 2 by default).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "util/json.hpp"
#include "wearout/mission.hpp"

namespace fastmon {

enum class MechanismKind : std::uint8_t {
    /// The pre-mission-profile aging knob (AgingModel): amplitude and
    /// exponent come from the device's sampled AgingModel, severity
    /// spread from the population's amplitude jitter (no Weibull draw).
    /// Responds to duty cycle only, so a duty-1 reference mission
    /// reproduces the legacy degradation bit-for-bit.
    LegacyPowerLaw,
    Nbti,  ///< negative-bias temperature instability (static stress)
    Hci,   ///< hot-carrier injection (switching stress)
    Em,    ///< electromigration (switching stress)
    Tddb,  ///< gate-oxide time-dependent dielectric breakdown
};

/// Which per-gate activity statistic scales a mechanism's stress.
enum class StressKind : std::uint8_t {
    Toggle,  ///< normalized toggle rate (HCI, EM, legacy)
    Static,  ///< normalized output-high probability (NBTI, TDDB)
};

/// Stable lowercase identifier ("nbti", "hci", ... / "legacy_powerlaw").
[[nodiscard]] const char* mechanism_name(MechanismKind kind);
[[nodiscard]] std::optional<MechanismKind> mechanism_from_name(
    std::string_view name);

struct MechanismConfig {
    MechanismKind kind = MechanismKind::Nbti;
    /// Delay-degradation coefficient at tau = t_ref under unit device
    /// scale and unit gate stress.  Ignored for LegacyPowerLaw (the
    /// device's AgingModel amplitude is used instead).
    double amplitude = 0.0;
    /// Power-law time exponent n; ignored for LegacyPowerLaw.
    double time_exponent = 0.5;
    double t_ref_years = 10.0;
    /// Arrhenius activation energy in eV (0 = temperature-insensitive).
    double ea_ev = 0.0;
    /// Exponential voltage acceleration: exp(gamma * (Vdd - Vref)).
    double voltage_gamma = 0.0;
    /// Weibull shape of the per-device severity scale (mean one).
    double weibull_beta = 2.0;

    /// Literature-flavored defaults per mechanism, calibrated so the
    /// built-in profiles produce distinct failure-year distributions
    /// within a 15-year horizon (see DESIGN.md section 12).
    [[nodiscard]] static MechanismConfig defaults(MechanismKind kind);

    /// Equivalent-stress-time rate at `op` relative to `ref` (rate 1 at
    /// the reference point): Arrhenius x voltage x duty, and for
    /// switching-driven mechanisms (HCI, EM) x frequency ratio.
    [[nodiscard]] double rate(const OperatingPoint& op,
                              const OperatingPoint& ref) const;

    /// Power-law stress integral (tau / t_ref)^n; 0 for tau <= 0.
    /// Ignores the legacy kind (whose curve lives on AgingModel).
    [[nodiscard]] double stress_integral(double tau) const;

    [[nodiscard]] StressKind stress_kind() const;

    [[nodiscard]] Json to_json() const;
    static std::optional<MechanismConfig> from_json(const Json& j);

    friend bool operator==(const MechanismConfig&,
                           const MechanismConfig&) = default;
};

}  // namespace fastmon
