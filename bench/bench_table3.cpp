// Reproduces Table III: test time reduction for coverage targets
// 99 / 98 / 95 / 90 % of the targeted hidden delay faults.
#include <iostream>

#include "bench_common.hpp"
#include "flow/report.hpp"

int main() {
    using namespace fastmon;
    const bench::BenchSettings settings = bench::BenchSettings::from_env();
    settings.print_header("Table III — test time per coverage target");
    const std::vector<HdfFlowResult> rows =
        bench::run_all_profiles(settings);
    print_table3(std::cout, rows);
    std::cout << "\nShape checks (paper: lower coverage targets need at"
                 " most as many frequencies / schedule entries):\n";
    bool ok = true;
    for (const HdfFlowResult& r : rows) {
        for (std::size_t k = 1; k < r.coverage_rows.size(); ++k) {
            const CoverageRow& hi = r.coverage_rows[k - 1];
            const CoverageRow& lo = r.coverage_rows[k];
            if (lo.num_frequencies > hi.num_frequencies) {
                std::cout << "  VIOLATION: " << r.circuit << " cov "
                          << lo.coverage << " uses more frequencies than "
                          << hi.coverage << "\n";
                ok = false;
            }
            if (lo.schedule_size > hi.schedule_size) {
                std::cout << "  VIOLATION: " << r.circuit << " cov "
                          << lo.coverage << " schedule larger than "
                          << hi.coverage << "\n";
                ok = false;
            }
        }
    }
    if (ok) std::cout << "  all rows monotone  [OK]\n";
    return ok ? 0 : 1;
}
