// Shared infrastructure of the table/figure benches.
//
// Every bench reproduces one table or figure of the paper on the twelve
// benchmark profiles (Sec. V).  Because the underlying flow (ATPG +
// timing-accurate fault simulation + scheduling) is identical across
// Tables I-III, results are cached on disk per (profile, configuration)
// so the three table benches share one computation.
//
// Environment knobs (all printed in the bench header):
//   FASTMON_MAX_GATES   per-circuit gate cap; profiles larger than this
//                       are scaled down proportionally (default 3500)
//   FASTMON_MAX_FAULTS  cap on simulated candidate faults (default 3000)
//   FASTMON_FAST        =1: small fast mode for smoke runs
//   FASTMON_PROFILES    comma-separated profile subset (default: all 12)
//   FASTMON_NO_CACHE    =1: ignore and overwrite the on-disk cache
#pragma once

#include <span>
#include <string>
#include <vector>

#include "flow/hdf_flow.hpp"
#include "netlist/generator.hpp"

namespace fastmon::bench {

struct BenchSettings {
    std::size_t max_gates = 3500;
    std::size_t max_faults = 3000;
    bool fast = false;
    bool no_cache = false;
    std::vector<std::string> profiles;  ///< empty = all

    static BenchSettings from_env();
    void print_header(const std::string& bench_name) const;
};

/// Flow configuration used by all benches for a given profile.
HdfFlowConfig bench_flow_config(const BenchSettings& settings,
                                const CircuitProfile& profile);

/// Effective generator scale for a profile under the settings.
double profile_scale(const BenchSettings& settings,
                     const CircuitProfile& profile);

/// Runs (or loads from cache) the full flow for every selected profile.
std::vector<HdfFlowResult> run_all_profiles(const BenchSettings& settings);

/// Cache round trip, exposed for tests.
std::string serialize_result(const HdfFlowResult& result);
bool deserialize_result(const std::string& text, HdfFlowResult& result);

/// One measured detection-engine run in the BENCH_detection.json
/// artifact.
struct DetectionBenchEntry {
    std::string name;            ///< circuit / configuration label
    DetectionCounters counters;  ///< engine funnel + phase times
    std::size_t num_faults = 0;
    std::size_t num_patterns = 0;
};

/// Writes the machine-readable perf artifact consumed by perf-tracking
/// scripts (bench/run_bench.sh appends it to the build log).  Counter
/// columns come from DetectionCounters::to_json(), the same source the
/// reports use.
void write_detection_json(const std::string& path,
                          const std::string& bench_name,
                          std::span<const DetectionBenchEntry> entries);

/// Writes the run manifest sidecar (BENCH_manifest.json): bench name +
/// settings as the config block, the given phase times, and a snapshot
/// of the global metrics registry (shared-pool stats included).
/// bench/run_bench.sh refuses to pass without this file parsing.
/// `flow_status`, when given, carries the per-phase outcomes of the
/// underlying flow; otherwise only process-level cancellation is
/// recorded.
void write_bench_manifest(const std::string& path,
                          const std::string& bench_name,
                          const BenchSettings& settings,
                          std::span<const PhaseTime> phases,
                          double total_wall_seconds,
                          const FlowStatus* flow_status = nullptr);

}  // namespace fastmon::bench
