// Ablations of the design choices called out in DESIGN.md §6, on one
// monitor-friendly circuit:
//   A. pessimistic pulse filtering (glitch threshold) on/off,
//   B. candidate policy: representative midpoints vs. boundary points
//      (robustness under +-2 % delay scaling),
//   C. PLL realizability: quantizing the ideal periods onto a clock
//      generator grid (coverage kept, relock cost),
//   D. two-step schedule optimization vs. naive application.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "schedule/clock_gen.hpp"
#include "schedule/robustness.hpp"

int main() {
    using namespace fastmon;
    const bench::BenchSettings settings = bench::BenchSettings::from_env();
    settings.print_header("Ablations — DESIGN.md design choices");

    GeneratorConfig gc;
    gc.name = "ablation";
    gc.n_gates = settings.fast ? 600 : 1500;
    gc.n_ffs = gc.n_gates / 10;
    gc.n_inputs = 24;
    gc.n_outputs = 24;
    gc.depth = 20;
    gc.spread = 0.8;
    gc.seed = 4711;
    const Netlist netlist = generate_circuit(gc);

    HdfFlowConfig config;
    config.seed = 4711;
    config.max_simulated_faults = settings.fast ? 800 : 2000;
    config.atpg.max_random_batches = settings.fast ? 30 : 100;
    config.atpg.max_deterministic_faults = 200;

    // --- A: pulse filtering --------------------------------------------
    std::printf("\n[A] pessimistic pulse filtering (Sec. II-A)\n");
    std::size_t prop_filtered = 0;
    std::size_t prop_raw = 0;
    {
        HdfFlow flow(netlist, config);
        flow.prepare();
        for (std::size_t i = 0; i < flow.ranges().size(); ++i) {
            if (!flow.full_range_in_window(i).empty()) ++prop_filtered;
        }
        HdfFlowConfig raw_cfg = config;
        // Threshold 0: count glitch-width intervals as detections; also
        // disable the gate-level inertial filter.
        raw_cfg.glitch_threshold = 0.0;
        raw_cfg.wave.inertial_fraction = 0.0;
        HdfFlow raw_flow(netlist, raw_cfg);
        raw_flow.prepare();
        for (std::size_t i = 0; i < raw_flow.ranges().size(); ++i) {
            if (!raw_flow.full_range_in_window(i).empty()) ++prop_raw;
        }
        std::printf("    detected with filtering:    %zu\n", prop_filtered);
        std::printf("    detected without filtering: %zu "
                    "(optimistic: counts glitch-width detections a tester"
                    " cannot rely on)\n",
                    prop_raw);
    }

    // --- B/C/D on the filtered flow -------------------------------------
    HdfFlow flow(netlist, config);
    flow.prepare();
    std::vector<IntervalSet> target_ranges;
    for (std::uint32_t pos : flow.target_positions()) {
        target_ranges.push_back(flow.full_range_in_window(pos));
    }
    FrequencySelectOptions fopts;
    const FrequencySelection sel = select_frequencies(target_ranges, fopts);

    std::printf("\n[B] candidate policy robustness (+-2%% delay scaling)\n");
    {
        // Boundary variant: snap each selected period to the nearest
        // covering-range upper boundary.
        std::vector<Time> boundary = sel.periods;
        for (Time& t : boundary) {
            Time best = t;
            Time best_dist = 1e18;
            for (const IntervalSet& r : target_ranges) {
                for (const Interval& iv : r.intervals()) {
                    if (iv.contains(t) && iv.hi - t < best_dist) {
                        best_dist = iv.hi - t;
                        best = iv.hi - 1e-6 * iv.length();
                    }
                }
            }
            t = best;
        }
        const double mid =
            std::min(coverage_under_scaling(target_ranges, sel.periods, 1.02),
                     coverage_under_scaling(target_ranges, sel.periods, 0.98));
        const double bnd =
            std::min(coverage_under_scaling(target_ranges, boundary, 1.02),
                     coverage_under_scaling(target_ranges, boundary, 0.98));
        const RobustnessReport margins =
            selection_margins(target_ranges, sel.periods);
        std::printf("    midpoint candidates:  worst-case retained %.1f%%,"
                    " min margin %.2f ps\n",
                    100.0 * mid, margins.min_margin);
        std::printf("    boundary candidates:  worst-case retained %.1f%%\n",
                    100.0 * bnd);
    }

    std::printf("\n[C] PLL realizability (clock-generator grid)\n");
    {
        const ClockGenerator gen;  // 100 MHz reference, dense grid
        const QuantizedSelection q =
            quantize_selection(gen, sel.periods, target_ranges);
        std::printf("    %zu ideal periods -> %zu realizable settings,"
                    " %zu unrealizable, %zu faults lost\n",
                    sel.periods.size(), q.settings.size(), q.unrealizable,
                    q.coverage_lost.size());
        std::printf("    max relative grid error in the FAST window: %.4f%%\n",
                    100.0 * gen.max_relative_error(
                                flow.sta().clock_period / 3.0,
                                flow.sta().clock_period));
        std::printf("    relock cost per switch: %.0f ps (%.1f nominal"
                    " cycles)\n",
                    gen.relock_time(),
                    gen.relock_time() / flow.sta().clock_period);
    }

    std::printf("\n[D] two-step optimization vs naive application\n");
    {
        const HdfFlowResult r = flow.run();
        std::printf("    naive |P x C x F| = %zu, optimized |S| = %zu"
                    " (reduction %.1f%%)\n",
                    r.orig_pc, r.opti_pc, r.pc_reduction_percent);
        const TestTimeModel model;
        std::printf("    test-time model: %.0f vs %.0f cycles\n",
                    model.naive_cycles(r.freq_prop, r.num_patterns, 5),
                    model.relock_cycles * static_cast<double>(r.freq_prop) +
                        model.cycles_per_pattern *
                            static_cast<double>(r.opti_pc));
    }
    return 0;
}
