// Reproduces Table I: circuit statistics and targeted hidden delay
// faults — conventional FAST vs. the monitor-reuse method.
#include <iostream>

#include "bench_common.hpp"
#include "flow/report.hpp"

int main() {
    using namespace fastmon;
    const bench::BenchSettings settings = bench::BenchSettings::from_env();
    settings.print_header("Table I — circuit statistics and targeted HDFs");
    const std::vector<HdfFlowResult> rows =
        bench::run_all_profiles(settings);
    print_table1(std::cout, rows);
    std::cout << "\nDetection-engine counters (cached rows keep the"
                 " counters of the run that produced them):\n";
    print_engine_counters(std::cout, rows);
    std::cout << "\nShape checks (paper: prop >= conv on every circuit;"
                 " gains range from a few % to >100%):\n";
    bool ok = true;
    for (const HdfFlowResult& r : rows) {
        if (r.detected_prop < r.detected_conv) {
            std::cout << "  VIOLATION: " << r.circuit
                      << " prop < conv\n";
            ok = false;
        }
    }
    if (ok) std::cout << "  all rows: prop >= conv  [OK]\n";
    return ok ? 0 : 1;
}
