#include "bench_common.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace fastmon::bench {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* v = std::getenv(name);
    if (v == nullptr) return fallback;
    return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

bool env_flag(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr && std::string(v) != "0" && std::string(v) != "";
}

}  // namespace

BenchSettings BenchSettings::from_env() {
    // Every bench is interruptible: Ctrl-C (or FASTMON_DEADLINE, armed
    // by the token's first access) requests cooperative cancellation,
    // and the flow flushes a manifest snapshot at each phase boundary.
    CancelToken::global().install_signal_handlers();
    BenchSettings s;
    s.fast = env_flag("FASTMON_FAST");
    if (s.fast) {
        s.max_gates = 800;
        s.max_faults = 1000;
    }
    s.max_gates = env_size("FASTMON_MAX_GATES", s.max_gates);
    s.max_faults = env_size("FASTMON_MAX_FAULTS", s.max_faults);
    s.no_cache = env_flag("FASTMON_NO_CACHE");
    if (const char* p = std::getenv("FASTMON_PROFILES")) {
        std::istringstream is(p);
        std::string tok;
        while (std::getline(is, tok, ',')) {
            if (!tok.empty()) s.profiles.push_back(tok);
        }
    }
    return s;
}

void BenchSettings::print_header(const std::string& bench_name) const {
    std::cout << "== " << bench_name << " ==\n";
    std::cout << "settings: max_gates=" << max_gates
              << " max_faults=" << max_faults << " fast=" << (fast ? 1 : 0)
              << "\n";
    std::cout << "note: profiles larger than max_gates are generated scaled"
                 " down; absolute counts are therefore smaller than the"
                 " paper's, the qualitative shape is the reproduction"
                 " target (see EXPERIMENTS.md).\n";
}

double profile_scale(const BenchSettings& settings,
                     const CircuitProfile& profile) {
    if (profile.gates <= settings.max_gates) return 1.0;
    return static_cast<double>(settings.max_gates) /
           static_cast<double>(profile.gates);
}

HdfFlowConfig bench_flow_config(const BenchSettings& settings,
                                const CircuitProfile& profile) {
    HdfFlowConfig config;
    config.seed = profile.seed;
    config.max_simulated_faults = settings.max_faults;
    config.atpg.seed = profile.seed;
    config.atpg.max_deterministic_faults = settings.fast ? 0 : 400;
    config.atpg.deterministic_phase = !settings.fast;
    config.atpg.max_random_batches = settings.fast ? 40 : 150;
    config.solver.time_limit_sec = settings.fast ? 2.0 : 10.0;
    config.solver.max_nodes = settings.fast ? 20000 : 200000;
    // Phase-boundary manifest snapshots (atomic replace), so a run
    // killed mid-flow still leaves a well-formed BENCH_manifest.json.
    config.manifest_path = "BENCH_manifest.json";
    return config;
}

namespace {

std::string cache_key(const BenchSettings& settings,
                      const CircuitProfile& profile) {
    std::ostringstream os;
    os << profile.name << "_v4_g" << settings.max_gates << "_f"
       << settings.max_faults << (settings.fast ? "_fast" : "");
    return os.str();
}

std::filesystem::path cache_dir() {
    return std::filesystem::path("fastmon_bench_cache");
}

}  // namespace

std::string serialize_result(const HdfFlowResult& r) {
    std::ostringstream os;
    os.precision(12);
    os << "circuit " << r.circuit << '\n';
    os << "num_gates " << r.num_gates << '\n';
    os << "num_ffs " << r.num_ffs << '\n';
    os << "num_patterns " << r.num_patterns << '\n';
    os << "num_monitors " << r.num_monitors << '\n';
    os << "fault_universe " << r.fault_universe << '\n';
    os << "at_speed " << r.at_speed_detectable << '\n';
    os << "redundant " << r.timing_redundant << '\n';
    os << "candidates " << r.candidate_faults << '\n';
    os << "simulated " << r.simulated_faults << '\n';
    os << "detected_conv " << r.detected_conv << '\n';
    os << "detected_prop " << r.detected_prop << '\n';
    os << "gain_percent " << r.gain_percent << '\n';
    os << "monitor_at_speed " << r.monitor_at_speed << '\n';
    os << "target_faults " << r.target_faults << '\n';
    os << "freq_conv " << r.freq_conv << '\n';
    os << "freq_heur " << r.freq_heur << '\n';
    os << "freq_prop " << r.freq_prop << '\n';
    os << "freq_reduction " << r.freq_reduction_percent << '\n';
    os << "orig_pc " << r.orig_pc << '\n';
    os << "opti_pc " << r.opti_pc << '\n';
    os << "pc_reduction " << r.pc_reduction_percent << '\n';
    os << "schedule_optimal " << (r.schedule_proven_optimal ? 1 : 0) << '\n';
    os << "schedule_uncovered " << r.schedule_uncovered << '\n';
    os << "clock_period " << r.clock_period << '\n';
    os << "t_min " << r.t_min << '\n';
    os << "atpg_coverage " << r.atpg_coverage << '\n';
    for (const CoverageRow& row : r.coverage_rows) {
        os << "coverage_row " << row.coverage << ' ' << row.num_frequencies
           << ' ' << row.naive_pc << ' ' << row.schedule_size << ' '
           << row.reduction_percent << '\n';
    }
    const DetectionCounters& c = r.detection;
    os << "detection " << c.pairs_total << ' ' << c.pairs_screened_out << ' '
       << c.pairs_inactive << ' ' << c.pairs_simulated << ' '
       << c.pairs_detected << ' ' << c.gates_reevaluated << ' '
       << c.good_wave_sims << ' ' << c.cones_cached << ' '
       << c.screen_seconds << ' ' << c.good_wave_seconds << ' '
       << c.fault_sim_seconds << ' ' << c.analyze_seconds << ' '
       << c.table_seconds << '\n';
    return os.str();
}

bool deserialize_result(const std::string& text, HdfFlowResult& r) {
    std::istringstream is(text);
    std::string key;
    std::size_t fields = 0;
    while (is >> key) {
        if (key == "circuit") {
            is >> r.circuit;
        } else if (key == "num_gates") {
            is >> r.num_gates;
        } else if (key == "num_ffs") {
            is >> r.num_ffs;
        } else if (key == "num_patterns") {
            is >> r.num_patterns;
        } else if (key == "num_monitors") {
            is >> r.num_monitors;
        } else if (key == "fault_universe") {
            is >> r.fault_universe;
        } else if (key == "at_speed") {
            is >> r.at_speed_detectable;
        } else if (key == "redundant") {
            is >> r.timing_redundant;
        } else if (key == "candidates") {
            is >> r.candidate_faults;
        } else if (key == "simulated") {
            is >> r.simulated_faults;
        } else if (key == "detected_conv") {
            is >> r.detected_conv;
        } else if (key == "detected_prop") {
            is >> r.detected_prop;
        } else if (key == "gain_percent") {
            is >> r.gain_percent;
        } else if (key == "monitor_at_speed") {
            is >> r.monitor_at_speed;
        } else if (key == "target_faults") {
            is >> r.target_faults;
        } else if (key == "freq_conv") {
            is >> r.freq_conv;
        } else if (key == "freq_heur") {
            is >> r.freq_heur;
        } else if (key == "freq_prop") {
            is >> r.freq_prop;
        } else if (key == "freq_reduction") {
            is >> r.freq_reduction_percent;
        } else if (key == "orig_pc") {
            is >> r.orig_pc;
        } else if (key == "opti_pc") {
            is >> r.opti_pc;
        } else if (key == "pc_reduction") {
            is >> r.pc_reduction_percent;
        } else if (key == "schedule_optimal") {
            int v = 0;
            is >> v;
            r.schedule_proven_optimal = v != 0;
        } else if (key == "schedule_uncovered") {
            is >> r.schedule_uncovered;
        } else if (key == "clock_period") {
            is >> r.clock_period;
        } else if (key == "t_min") {
            is >> r.t_min;
        } else if (key == "atpg_coverage") {
            is >> r.atpg_coverage;
        } else if (key == "coverage_row") {
            CoverageRow row;
            is >> row.coverage >> row.num_frequencies >> row.naive_pc >>
                row.schedule_size >> row.reduction_percent;
            r.coverage_rows.push_back(row);
            continue;
        } else if (key == "detection") {
            DetectionCounters& c = r.detection;
            is >> c.pairs_total >> c.pairs_screened_out >> c.pairs_inactive >>
                c.pairs_simulated >> c.pairs_detected >> c.gates_reevaluated >>
                c.good_wave_sims >> c.cones_cached >> c.screen_seconds >>
                c.good_wave_seconds >> c.fault_sim_seconds >>
                c.analyze_seconds >> c.table_seconds;
            continue;
        } else {
            return false;
        }
        ++fields;
    }
    return fields >= 20;
}

std::vector<HdfFlowResult> run_all_profiles(const BenchSettings& settings) {
    std::vector<HdfFlowResult> results;
    std::error_code ec;
    std::filesystem::create_directories(cache_dir(), ec);

    for (const CircuitProfile& profile : paper_profiles()) {
        if (!settings.profiles.empty() &&
            std::find(settings.profiles.begin(), settings.profiles.end(),
                      profile.name) == settings.profiles.end()) {
            continue;
        }
        const std::filesystem::path cache_file =
            cache_dir() / (cache_key(settings, profile) + ".txt");
        if (!settings.no_cache && std::filesystem::exists(cache_file)) {
            std::ifstream in(cache_file);
            std::stringstream buf;
            buf << in.rdbuf();
            HdfFlowResult r;
            if (deserialize_result(buf.str(), r)) {
                std::cerr << "[cache] " << profile.name << " loaded from "
                          << cache_file.string() << '\n';
                results.push_back(std::move(r));
                continue;
            }
        }
        const auto start = std::chrono::steady_clock::now();
        const double scale = profile_scale(settings, profile);
        const Netlist netlist =
            generate_circuit(profile_config(profile, scale));
        HdfFlow flow(netlist, bench_flow_config(settings, profile));
        HdfFlowResult r;
        try {
            r = flow.run();
        } catch (const FlowError& e) {
            // An essential phase died; the phase-boundary snapshot
            // (with its "failed" phase entry) is already on disk.
            std::cerr << "[flow] " << profile.name << " FAILED: "
                      << e.what() << '\n';
            RunManifest failed;
            failed.set_circuit("name", Json(profile.name));
            failed.set_status(flow.status().to_json("failed"));
            failed.write("BENCH_manifest.json");
            if (CancelToken::global().cancelled()) break;
            continue;
        }
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        std::cerr << "[flow] " << profile.name << " (scale "
                  << scale << ") done in " << secs << " s"
                  << (r.status.complete() ? "" : " (degraded)") << '\n';
        // Flow-level run manifest (config, circuit, per-phase times,
        // metrics snapshot); successive profiles overwrite, so the file
        // describes the last fresh run.
        if (flow.manifest(r).write("BENCH_manifest.json")) {
            std::cerr << "[artifact] wrote BENCH_manifest.json ("
                      << profile.name << ")\n";
        } else {
            std::cerr << "[artifact] FAILED to write BENCH_manifest.json\n";
        }
        // Never cache a degraded result: the next (uncancelled) run
        // must recompute it in full.
        if (r.status.complete()) {
            std::ofstream out(cache_file);
            out << serialize_result(r);
        }
        const bool stop = CancelToken::global().cancelled();
        results.push_back(std::move(r));
        if (stop) {
            std::cerr << "[flow] cancelled ("
                      << cancel_cause_name(CancelToken::global().cause())
                      << "); skipping remaining profiles\n";
            break;
        }
    }
    return results;
}

void write_detection_json(const std::string& path,
                          const std::string& bench_name,
                          std::span<const DetectionBenchEntry> entries) {
    Json doc = Json::object();
    doc.set("bench", Json(bench_name));
    Json rows = Json::array();
    for (const DetectionBenchEntry& e : entries) {
        Json row = Json::object();
        row.set("name", Json(e.name));
        row.set("num_faults", Json(e.num_faults));
        row.set("num_patterns", Json(e.num_patterns));
        const Json counters = e.counters.to_json();
        for (const auto& [key, value] : counters.as_object()) {
            row.set(key, value);
        }
        rows.push_back(std::move(row));
    }
    doc.set("entries", std::move(rows));
    if (!atomic_write_file(path, doc.dump(2) + '\n')) {
        std::cerr << "[artifact] FAILED to write " << path << '\n';
        return;
    }
    std::cerr << "[artifact] wrote " << path << '\n';
}

void write_bench_manifest(const std::string& path,
                          const std::string& bench_name,
                          const BenchSettings& settings,
                          std::span<const PhaseTime> phases,
                          double total_wall_seconds,
                          const FlowStatus* flow_status) {
    RunManifest m;
    m.set_config("bench", Json(bench_name));
    m.set_config("max_gates", Json(settings.max_gates));
    m.set_config("max_faults", Json(settings.max_faults));
    m.set_config("fast", Json(settings.fast));
    for (const PhaseTime& p : phases) m.add_phase(p);
    m.set_total_wall_seconds(total_wall_seconds);
    // Status block: per-phase outcomes when the caller hands over its
    // flow status, process-level cancellation either way.
    const CancelToken& cancel = CancelToken::global();
    FlowStatus status;
    if (flow_status != nullptr) status = *flow_status;
    status.cancelled = status.cancelled || cancel.cancelled();
    if (status.cancel_cause == CancelCause::None) {
        status.cancel_cause = cancel.cause();
    }
    m.set_status(status.to_json());
    MetricsRegistry& reg = MetricsRegistry::global();
    ThreadPool::shared().publish_metrics(reg);
    m.set_metrics(reg.to_json());
    if (!m.write(path)) {
        std::cerr << "[artifact] FAILED to write " << path << '\n';
        return;
    }
    std::cerr << "[artifact] wrote " << path << '\n';
}

}  // namespace fastmon::bench
