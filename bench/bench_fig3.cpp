// Reproduces Fig. 3: hidden delay fault coverage over the maximum FAST
// frequency factor f_max/f_nom in [1, 3], with and without
// programmable delay monitors, on an industrial-like profile.
//
// Paper shape: both curves increase with f_max; the monitor curve lies
// above the conventional one everywhere, starts clearly above zero at
// f_max = f_nom (monitor shifts make some HDFs at-speed observable),
// and roughly doubles the conventional coverage at f_max = 3 f_nom
// (~35 % -> ~65 % in the paper's design).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "flow/report.hpp"
#include "util/cancel.hpp"

int main() {
    using namespace fastmon;
    const PhaseStopwatch total_watch;
    std::vector<PhaseTime> phases;
    const bench::BenchSettings settings = bench::BenchSettings::from_env();
    settings.print_header("Fig. 3 — HDF coverage over f_max");

    // Industrial-like profile: wide path-depth spread (the regime where
    // monitors pay off most, as in the paper's industrial design).
    const CircuitProfile& profile = find_profile(
        settings.profiles.empty() ? "p89k" : settings.profiles.front());
    const double scale = bench::profile_scale(settings, profile);
    std::cout << "profile " << profile.name << " at scale " << scale << "\n";
    const Netlist netlist = generate_circuit(profile_config(profile, scale));

    HdfFlow flow(netlist, bench::bench_flow_config(settings, profile));
    try {
        const PhaseStopwatch watch;
        flow.prepare();
        phases.push_back(watch.elapsed("prepare"));
    } catch (const FlowError& e) {
        // The flow already flushed a manifest snapshot naming the
        // failed phase.  A cancelled run (deadline/Ctrl-C) is a clean
        // exit; a genuine phase failure is not.
        std::cout << "flow aborted: " << e.what() << "\n";
        if (CancelToken::global().cancelled()) {
            std::cout << "interrupted ("
                      << cancel_cause_name(CancelToken::global().cause())
                      << "); partial manifest left in BENCH_manifest.json\n";
            return 0;
        }
        return 1;
    }

    std::vector<double> factors;
    for (double f = 1.0; f <= 3.0001; f += 0.125) factors.push_back(f);
    const PhaseStopwatch curve_watch;
    const std::vector<CoverageBySpeed> curve = flow.coverage_curve(factors);
    phases.push_back(curve_watch.elapsed("coverage_curve"));
    print_fig3(std::cout, curve);

    // Engine perf artifact (pass-A counters of the prepare() above).
    bench::DetectionBenchEntry entry;
    entry.name = profile.name;
    entry.counters = flow.detection_counters();
    entry.num_faults = flow.simulated_faults().size();
    entry.num_patterns = flow.patterns().size();
    bench::write_detection_json("BENCH_detection.json", "bench_fig3",
                                std::span(&entry, 1));
    bench::write_bench_manifest("BENCH_manifest.json", "bench_fig3", settings,
                                phases,
                                total_watch.elapsed("total").wall_seconds,
                                &flow.status());

    if (CancelToken::global().cancelled() || !flow.status().complete()) {
        // Interrupted or degraded run: the curve only covers the faults
        // simulated before the stop, so the paper-shape assertions do
        // not apply.  Artifacts above are still complete and valid.
        std::cout << "interrupted ("
                  << cancel_cause_name(CancelToken::global().cause())
                  << "): skipping shape checks on a partial curve\n";
        return 0;
    }

    // Shape checks.
    bool ok = true;
    for (std::size_t i = 0; i < curve.size(); ++i) {
        if (curve[i].prop + 1e-9 < curve[i].conv) {
            std::cout << "VIOLATION: monitor coverage below conventional at "
                      << curve[i].fmax_factor << "\n";
            ok = false;
        }
        if (i > 0 && (curve[i].conv + 1e-9 < curve[i - 1].conv ||
                      curve[i].prop + 1e-9 < curve[i - 1].prop)) {
            std::cout << "VIOLATION: coverage not monotone at "
                      << curve[i].fmax_factor << "\n";
            ok = false;
        }
    }
    if (curve.front().prop <= curve.front().conv + 1e-9) {
        std::cout << "WARNING: no monitor gain at f_max = f_nom\n";
    }
    std::cout << (ok ? "shape checks passed  [OK]\n"
                     : "shape checks FAILED\n");
    return ok ? 0 : 1;
}
