// Campaign engine bench: a Monte Carlo device-population run on the
// demo pipeline circuit plus a scaled benchmark profile, emitting the
// machine-readable BENCH_campaign.json artifact (campaign config +
// aggregate prediction quality + per-circuit wall time).
//
// The "campaign" and "aggregate" blocks of each entry are
// bit-deterministic for a fixed seed — across runs, thread counts, and
// batch widths — so perf tracking can diff them; wall times live in
// the separate "run" blocks.  The demo entry carries a three-way
// differential (batched SoA vs scalar incremental vs full-STA rebuild)
// with batch_check/sta_check verdicts and batch_speedup/sta_speedup
// ratios.  bench/run_bench.sh validates the artifact schema and fails
// on a degraded (cancelled / partial) flow status or a diverged check.
#include <cmath>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "netlist/bench_io.hpp"
#include "timing/batch_sta_engine.hpp"
#include "util/atomic_file.hpp"
#include "util/cancel.hpp"

namespace {

// The in-repo demo_pipeline.bench circuit, embedded so the bench runs
// from any working directory.
constexpr const char* kDemoPipeline = R"(# demo: registered 3-stage pipeline fragment
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
r0 = DFF(n4)
r1 = DFF(n6)
n1 = NAND(a, b)
n2 = NOR(c, d)
n3 = XOR(n1, n2)
n4 = AND(n3, r1)
n5 = NOT(n3)
n6 = OR(n5, r0)
y  = NAND(n4, n6)
z  = XOR(r0, r1)
)";

}  // namespace

int main() {
    using namespace fastmon;
    CancelToken::global().install_signal_handlers();
    const PhaseStopwatch total_watch;
    const bench::BenchSettings settings = bench::BenchSettings::from_env();
    settings.print_header("Campaign — Monte Carlo device population");

    CampaignConfig config;
    config.seed = 1;
    config.population = settings.fast ? 128 : 1000;
    // The small bench circuits alert late in life; widen the burn-in
    // screen and the early-fail cutoff so the classification block
    // carries a non-trivial signal.
    config.screen_years = 2.0;
    config.aggregate.early_fail_years = 8.0;

    Json entries = Json::array();
    bool all_complete = true;

    struct Target {
        std::string label;
        Netlist netlist;
    };
    std::vector<Target> targets;
    targets.push_back(Target{
        "demo_pipeline",
        read_bench_string(kDemoPipeline, "demo_pipeline")});
    if (!settings.fast) {
        const CircuitProfile& profile = find_profile("s9234");
        const double scale = bench::profile_scale(settings, profile);
        targets.push_back(
            Target{profile.name,
                   generate_circuit(profile_config(profile, scale))});
    }

    {
        // Untimed warm-up: spin up the shared thread pool and fault the
        // allocator pools for BOTH engine paths of the differential
        // below, at full demo population — the demo circuit is cheap
        // and the batched-vs-scalar speedup ratio is otherwise skewed
        // by whichever run happens to go first on cold caches.
        CampaignConfig warm = config;
        (void)run_campaign(targets.front().netlist, warm);
        warm.batch_width = 1;
        (void)run_campaign(targets.front().netlist, warm);
    }

    bool identical = true;
    for (std::size_t t = 0; t < targets.size(); ++t) {
        const Target& target = targets[t];
        std::cout << "campaign on " << target.label << " ("
                  << target.netlist.size() << " gates, population "
                  << config.population << ", batch width " << kBatchWidth
                  << ")\n";
        // Default run: the batched SoA engine at the compiled width
        // (identical to scalar when FASTMON_BATCH_WIDTH=1).
        const CampaignResult result = run_campaign(target.netlist, config);
        const CampaignAggregate& agg = result.aggregate;
        const double batched_wall = result.total_wall_seconds;
        std::cout << "  " << result.devices_completed << " devices, ROC AUC "
                  << agg.classification.roc_auc << ", AP "
                  << agg.classification.average_precision
                  << ", wide-band lead p50 " << agg.lead_time_wide.p50
                  << " y, wall " << batched_wall << " s\n";
        Json entry = result.to_json(config);
        all_complete = all_complete && result.status.complete();
        entry.set("batch_width",
                  static_cast<std::int64_t>(result.batch_width));
        if (batched_wall > 0.0) {
            entry.set("devices_per_sec",
                      static_cast<double>(result.devices_completed) /
                          batched_wall);
        }

        if (t == 0 && !CancelToken::global().cancelled()) {
            // Three-way differential on the demo circuit: the batched
            // SoA engine, the scalar incremental engine, and the legacy
            // from-scratch STA must all produce bit-identical
            // deterministic report blocks.
            auto blocks_match = [&](const Json& a, const Json& b,
                                    const char* what) {
                bool ok = true;
                for (const char* block : {"campaign", "aggregate"}) {
                    const Json* ja = a.find(block);
                    const Json* jb = b.find(block);
                    if (!ja || !jb || !(*ja == *jb)) {
                        ok = false;
                        std::cout << "  ERROR: \"" << block
                                  << "\" diverged between " << what << "\n";
                    }
                }
                return ok;
            };

            CampaignConfig scalar = config;
            scalar.batch_width = 1;
            std::cout << "  scalar incremental reference pass "
                         "(differential check)\n";
            const CampaignResult scalar_result =
                run_campaign(target.netlist, scalar);
            const double scalar_wall = scalar_result.total_wall_seconds;
            const bool batch_ok =
                blocks_match(entry, scalar_result.to_json(scalar),
                             "batched and scalar incremental");

            CampaignConfig reference = config;
            reference.full_sta = true;
            std::cout << "  full-STA reference pass (differential check)\n";
            const CampaignResult full =
                run_campaign(target.netlist, reference);
            const double full_wall = full.total_wall_seconds;
            const bool sta_ok =
                blocks_match(entry, full.to_json(reference),
                             "batched and full STA");
            identical = identical && batch_ok && sta_ok;

            const double sta_speedup =
                scalar_wall > 0.0 ? full_wall / scalar_wall : 0.0;
            const double batch_speedup =
                batched_wall > 0.0 ? scalar_wall / batched_wall : 0.0;
            std::cout << "  batched wall " << batched_wall
                      << " s vs scalar " << scalar_wall << " s ("
                      << batch_speedup << "x) vs full " << full_wall
                      << " s (" << sta_speedup << "x over scalar)\n";
            entry.set("sta_check", sta_ok ? "identical" : "diverged");
            entry.set("batch_check", batch_ok ? "identical" : "diverged");
            entry.set("full_sta_wall_seconds", full_wall);
            entry.set("scalar_wall_seconds", scalar_wall);
            entry.set("sta_speedup", sta_speedup);
            entry.set("batch_speedup", batch_speedup);

            // Telemetry differential: the heartbeat sidecar and the
            // streaming sketches are pure observation, so the
            // deterministic blocks must stay bit-identical with
            // telemetry on — at the batched width AND the scalar
            // width (the two engines instrument different code paths).
            CampaignConfig telem = config;
            telem.heartbeat_path = "BENCH_campaign.heartbeat.json";
            telem.heartbeat_seconds = 0.05;
            std::cout << "  telemetry-enabled pass (heartbeat sidecar "
                         "differential)\n";
            const CampaignResult telem_result =
                run_campaign(target.netlist, telem);
            const double telem_wall = telem_result.total_wall_seconds;
            bool telem_ok =
                blocks_match(entry, telem_result.to_json(telem),
                             "telemetry off and on (batched)");
            {
                CampaignConfig telem_scalar = telem;
                telem_scalar.batch_width = 1;
                telem_scalar.heartbeat_path =
                    "BENCH_campaign.scalar.heartbeat.json";
                const CampaignResult scalar_telem =
                    run_campaign(target.netlist, telem_scalar);
                telem_ok = blocks_match(scalar_result.to_json(scalar),
                                        scalar_telem.to_json(telem_scalar),
                                        "telemetry off and on (scalar)") &&
                           telem_ok;
            }
            identical = identical && telem_ok;
            const double telem_overhead =
                batched_wall > 0.0 ? telem_wall / batched_wall - 1.0 : 0.0;
            std::cout << "  telemetry wall " << telem_wall << " s ("
                      << telem_overhead * 100.0 << "% vs quiet run)\n";
            entry.set("telemetry_check",
                      telem_ok ? "identical" : "diverged");
            entry.set("telemetry_wall_seconds", telem_wall);
            entry.set("telemetry_overhead", telem_overhead);

            // Mission-profile comparison: every built-in deployment on
            // the demo circuit, each with a scalar-vs-batched
            // differential, plus a separation gate — two contrasting
            // profiles must produce measurably different failure-year
            // distributions and screen ROC curves, or the wear-out
            // physics has collapsed into a no-op.
            Json missions = Json::object();
            bool mission_ok = true;
            double server_auc = 0.0, server_p50 = 0.0;
            double mobile_auc = 0.0, mobile_p50 = 0.0;
            for (const MissionProfile& profile :
                 builtin_mission_profiles()) {
                CampaignConfig mission = config;
                mission.wearout.enabled = true;
                mission.wearout.mission = profile;
                std::cout << "  mission profile " << profile.name << "\n";
                const CampaignResult mres =
                    run_campaign(target.netlist, mission);
                CampaignConfig mscalar = mission;
                mscalar.batch_width = 1;
                const CampaignResult msc =
                    run_campaign(target.netlist, mscalar);
                mission_ok =
                    blocks_match(mres.to_json(mission),
                                 msc.to_json(mscalar),
                                 ("batched and scalar (" + profile.name +
                                  ")").c_str()) &&
                    mission_ok;
                const CampaignAggregate& magg = mres.aggregate;
                Json row = Json::object();
                row.set("roc_auc", magg.classification.roc_auc);
                row.set("average_precision",
                        magg.classification.average_precision);
                row.set("failed",
                        static_cast<std::int64_t>(magg.failed));
                row.set("early_failures",
                        static_cast<std::int64_t>(magg.early_failures));
                row.set("failure_p50", magg.wearout_failure_years.p50);
                row.set("lead_wide_p50", magg.lead_time_wide.p50);
                Json mechs = Json::object();
                for (const auto& [name, count] :
                     magg.failed_by_mechanism) {
                    mechs.set(name, static_cast<std::int64_t>(count));
                }
                row.set("failed_by_mechanism", std::move(mechs));
                row.set("wall_seconds", mres.total_wall_seconds);
                std::cout << "    AUC " << magg.classification.roc_auc
                          << ", failure p50 "
                          << magg.wearout_failure_years.p50
                          << " y, failed " << magg.failed << "/"
                          << result.devices_completed << "\n";
                if (profile.name == "server_247") {
                    server_auc = magg.classification.roc_auc;
                    server_p50 = magg.wearout_failure_years.p50;
                } else if (profile.name == "mobile_bursty") {
                    mobile_auc = magg.classification.roc_auc;
                    mobile_p50 = magg.wearout_failure_years.p50;
                }
                missions.set(profile.name, std::move(row));
            }
            // 24/7 server stress vs mostly-idle mobile deployment: the
            // failure-year medians must be years apart and the screen
            // ROC visibly different.
            const bool distinct =
                std::abs(server_p50 - mobile_p50) > 1.0 &&
                std::abs(server_auc - mobile_auc) > 0.01;
            if (!distinct) {
                std::cout << "  ERROR: server_247 and mobile_bursty are "
                             "indistinguishable (p50 "
                          << server_p50 << " vs " << mobile_p50
                          << " y, AUC " << server_auc << " vs "
                          << mobile_auc << ")\n";
            }
            identical = identical && mission_ok && distinct;
            entry.set("mission_profiles", std::move(missions));
            entry.set("mission_check",
                      mission_ok ? "identical" : "diverged");
            entry.set("profiles_distinct",
                      distinct ? "distinct" : "indistinct");
        }
        entries.push_back(std::move(entry));
    }

    Json artifact = Json::object();
    artifact.set("bench", "bench_campaign");
    artifact.set("entries", std::move(entries));
    artifact.set("total_wall_seconds",
                 total_watch.elapsed("total").wall_seconds);
    if (!atomic_write_file("BENCH_campaign.json", artifact.dump(2))) {
        std::cout << "ERROR: cannot write BENCH_campaign.json\n";
        return 1;
    }
    std::cout << "artifact written: BENCH_campaign.json\n";

    if (CancelToken::global().cancelled()) {
        std::cout << "interrupted ("
                  << cancel_cause_name(CancelToken::global().cause())
                  << "): partial campaign artifact is still valid\n";
        return 0;
    }
    if (!identical) {
        std::cout << "ERROR: a differential or separation gate failed "
                     "(see batch_check / sta_check / mission_check / "
                     "profiles_distinct)\n";
        return 1;
    }
    if (!all_complete) {
        std::cout << "WARNING: a campaign degraded without cancellation\n";
        return 1;
    }
    std::cout << "campaign bench done  [OK]\n";
    return 0;
}
