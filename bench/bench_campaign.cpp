// Campaign engine bench: a Monte Carlo device-population run on the
// demo pipeline circuit plus a scaled benchmark profile, emitting the
// machine-readable BENCH_campaign.json artifact (campaign config +
// aggregate prediction quality + per-circuit wall time).
//
// The "campaign" and "aggregate" blocks of each entry are
// bit-deterministic for a fixed seed — across runs and thread counts —
// so perf tracking can diff them; wall times live in the separate
// "run" blocks.  bench/run_bench.sh validates the artifact schema and
// fails on a degraded (cancelled / partial) flow status.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "netlist/bench_io.hpp"
#include "util/atomic_file.hpp"
#include "util/cancel.hpp"

namespace {

// The in-repo demo_pipeline.bench circuit, embedded so the bench runs
// from any working directory.
constexpr const char* kDemoPipeline = R"(# demo: registered 3-stage pipeline fragment
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
r0 = DFF(n4)
r1 = DFF(n6)
n1 = NAND(a, b)
n2 = NOR(c, d)
n3 = XOR(n1, n2)
n4 = AND(n3, r1)
n5 = NOT(n3)
n6 = OR(n5, r0)
y  = NAND(n4, n6)
z  = XOR(r0, r1)
)";

}  // namespace

int main() {
    using namespace fastmon;
    CancelToken::global().install_signal_handlers();
    const PhaseStopwatch total_watch;
    const bench::BenchSettings settings = bench::BenchSettings::from_env();
    settings.print_header("Campaign — Monte Carlo device population");

    CampaignConfig config;
    config.seed = 1;
    config.population = settings.fast ? 128 : 1000;
    // The small bench circuits alert late in life; widen the burn-in
    // screen and the early-fail cutoff so the classification block
    // carries a non-trivial signal.
    config.screen_years = 2.0;
    config.aggregate.early_fail_years = 8.0;

    Json entries = Json::array();
    bool all_complete = true;

    struct Target {
        std::string label;
        Netlist netlist;
    };
    std::vector<Target> targets;
    targets.push_back(Target{
        "demo_pipeline",
        read_bench_string(kDemoPipeline, "demo_pipeline")});
    if (!settings.fast) {
        const CircuitProfile& profile = find_profile("s9234");
        const double scale = bench::profile_scale(settings, profile);
        targets.push_back(
            Target{profile.name,
                   generate_circuit(profile_config(profile, scale))});
    }

    {
        // Untimed warm-up: spin up the shared thread pool and fault the
        // allocator pools so the first timed entry (the incremental
        // side of the differential below) isn't charged for it.
        CampaignConfig warm = config;
        warm.population = 32;
        (void)run_campaign(targets.front().netlist, warm);
    }

    bool identical = true;
    double demo_incremental_wall = 0.0;
    double demo_full_wall = 0.0;
    for (std::size_t t = 0; t < targets.size(); ++t) {
        const Target& target = targets[t];
        std::cout << "campaign on " << target.label << " ("
                  << target.netlist.size() << " gates, population "
                  << config.population << ")\n";
        const CampaignResult result = run_campaign(target.netlist, config);
        const CampaignAggregate& agg = result.aggregate;
        std::cout << "  " << result.devices_completed << " devices, ROC AUC "
                  << agg.classification.roc_auc << ", AP "
                  << agg.classification.average_precision
                  << ", wide-band lead p50 " << agg.lead_time_wide.p50
                  << " y, wall " << result.total_wall_seconds << " s\n";
        Json entry = result.to_json(config);
        all_complete = all_complete && result.status.complete();

        if (t == 0 && !CancelToken::global().cancelled()) {
            // Differential check on the demo circuit: the legacy
            // full-STA path must reproduce the incremental engine's
            // deterministic report blocks bit-for-bit.
            demo_incremental_wall = result.total_wall_seconds;
            CampaignConfig reference = config;
            reference.full_sta = true;
            std::cout << "  full-STA reference pass (differential check)\n";
            const CampaignResult full =
                run_campaign(target.netlist, reference);
            demo_full_wall = full.total_wall_seconds;
            const Json full_json = full.to_json(reference);
            for (const char* block : {"campaign", "aggregate"}) {
                const Json* a = entry.find(block);
                const Json* b = full_json.find(block);
                if (!a || !b || !(*a == *b)) {
                    identical = false;
                    std::cout << "  ERROR: \"" << block
                              << "\" diverged between incremental and "
                                 "full STA\n";
                }
            }
            const double speedup =
                demo_incremental_wall > 0.0
                    ? demo_full_wall / demo_incremental_wall
                    : 0.0;
            std::cout << "  incremental wall " << demo_incremental_wall
                      << " s vs full " << demo_full_wall << " s  ("
                      << speedup << "x)\n";
            entry.set("sta_check", identical ? "identical" : "diverged");
            entry.set("full_sta_wall_seconds", demo_full_wall);
            entry.set("sta_speedup", speedup);
        }
        entries.push_back(std::move(entry));
    }

    Json artifact = Json::object();
    artifact.set("bench", "bench_campaign");
    artifact.set("entries", std::move(entries));
    artifact.set("total_wall_seconds",
                 total_watch.elapsed("total").wall_seconds);
    if (!atomic_write_file("BENCH_campaign.json", artifact.dump(2))) {
        std::cout << "ERROR: cannot write BENCH_campaign.json\n";
        return 1;
    }
    std::cout << "artifact written: BENCH_campaign.json\n";

    if (CancelToken::global().cancelled()) {
        std::cout << "interrupted ("
                  << cancel_cause_name(CancelToken::global().cause())
                  << "): partial campaign artifact is still valid\n";
        return 0;
    }
    if (!identical) {
        std::cout << "ERROR: incremental STA diverged from the full-STA "
                     "reference\n";
        return 1;
    }
    if (!all_complete) {
        std::cout << "WARNING: a campaign degraded without cancellation\n";
        return 1;
    }
    std::cout << "campaign bench done  [OK]\n";
    return 0;
}
