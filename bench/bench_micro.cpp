// Google-benchmark micro suite: throughput of the library's kernels
// (not a paper table; used to track performance regressions) plus the
// two ablations called out in DESIGN.md: pulse-filter threshold and
// discretization candidate policy.
//
// After the google-benchmark run, main() measures the full detection
// engine (serial vs pooled) and writes BENCH_detection.json.
#include <benchmark/benchmark.h>

#include "atpg/tdf_atpg.hpp"
#include "bench_common.hpp"
#include "fault/detection_range.hpp"
#include "monitor/placement.hpp"
#include "netlist/generator.hpp"
#include "opt/set_cover.hpp"
#include "schedule/discretize.hpp"
#include "sim/wave_sim.hpp"
#include "timing/sta_engine.hpp"
#include "util/prng.hpp"

namespace {

using namespace fastmon;

const Netlist& test_circuit() {
    static const Netlist netlist = [] {
        GeneratorConfig config;
        config.name = "micro";
        config.n_gates = 1200;
        config.n_ffs = 120;
        config.n_inputs = 24;
        config.n_outputs = 24;
        config.depth = 18;
        config.spread = 0.6;
        config.seed = 7;
        return generate_circuit(config);
    }();
    return netlist;
}

const DelayAnnotation& test_delays() {
    static const DelayAnnotation d = DelayAnnotation::nominal(test_circuit());
    return d;
}

void BM_IntervalSetUnion(benchmark::State& state) {
    Prng rng(42);
    IntervalSet a;
    IntervalSet b;
    for (int i = 0; i < 64; ++i) {
        const Time lo = rng.uniform(0.0, 1000.0);
        a.add(lo, lo + rng.uniform(0.5, 20.0));
        const Time lo2 = rng.uniform(0.0, 1000.0);
        b.add(lo2, lo2 + rng.uniform(0.5, 20.0));
    }
    for (auto _ : state) {
        IntervalSet u = IntervalSet::united(a, b);
        benchmark::DoNotOptimize(u);
    }
}
BENCHMARK(BM_IntervalSetUnion);

void BM_Sta(benchmark::State& state) {
    for (auto _ : state) {
        StaResult r = StaEngine(test_circuit(), test_delays()).analyze();
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_Sta);

// The campaign hot path: one persistent engine, every iteration applies
// a dense aging-style delta (every combinational gate rescaled) and
// re-propagates only what changed bitwise.
void BM_StaEngineUpdateDense(benchmark::State& state) {
    const Netlist& nl = test_circuit();
    StaEngine engine(nl, test_delays(), 1.05, StaEngine::Scope::Arrivals);
    engine.analyze();
    DelayDelta delta;
    double level = 0.0;
    for (auto _ : state) {
        level = level < 0.2 ? level + 0.001 : 0.0;
        delta.clear();
        for (GateId id = 0; id < nl.size(); ++id) {
            if (!is_combinational(nl.gate(id).type)) continue;
            delta.scale(id, 1.0 + level);
        }
        benchmark::DoNotOptimize(engine.update(delta));
    }
}
BENCHMARK(BM_StaEngineUpdateDense);

// Sparse perturbation (a single defect arc): the cone-limited best case.
void BM_StaEngineUpdateSparse(benchmark::State& state) {
    const Netlist& nl = test_circuit();
    StaEngine engine(nl, test_delays(), 1.05, StaEngine::Scope::Arrivals);
    engine.analyze();
    const std::vector<GateId> sites = [&] {
        std::vector<GateId> v;
        for (GateId id = 0; id < nl.size(); ++id) {
            if (is_combinational(nl.gate(id).type)) v.push_back(id);
        }
        return v;
    }();
    DelayDelta delta;
    std::size_t i = 0;
    for (auto _ : state) {
        delta.clear();
        delta.add(sites[i++ % sites.size()], DelayDelta::kAllPins, 3.5);
        benchmark::DoNotOptimize(engine.update(delta));
    }
}
BENCHMARK(BM_StaEngineUpdateSparse);

void BM_WaveSimPattern(benchmark::State& state) {
    const Netlist& nl = test_circuit();
    const WaveSim sim(nl, test_delays());
    Prng rng(11);
    const std::size_t n = nl.comb_sources().size();
    std::vector<Bit> v1(n);
    std::vector<Bit> v2(n);
    for (std::size_t i = 0; i < n; ++i) {
        v1[i] = rng.chance(0.5) ? 1 : 0;
        v2[i] = rng.chance(0.5) ? 1 : 0;
    }
    for (auto _ : state) {
        auto waves = sim.simulate(v1, v2);
        benchmark::DoNotOptimize(waves);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(nl.size()));
}
BENCHMARK(BM_WaveSimPattern);

void BM_FaultConeSim(benchmark::State& state) {
    const Netlist& nl = test_circuit();
    const WaveSim sim(nl, test_delays());
    const FaultSim fsim(sim);
    Prng rng(12);
    const std::size_t n = nl.comb_sources().size();
    std::vector<Bit> v1(n);
    std::vector<Bit> v2(n);
    for (std::size_t i = 0; i < n; ++i) {
        v1[i] = rng.chance(0.5) ? 1 : 0;
        v2[i] = rng.chance(0.5) ? 1 : 0;
    }
    const auto good = sim.simulate(v1, v2);
    const FaultUniverse universe =
        FaultUniverse::generate(nl, test_delays());
    std::size_t fi = 0;
    for (auto _ : state) {
        const DelayFault& f = universe.fault(fi % universe.size());
        fi += 37;
        auto diffs = fsim.simulate(f, good);
        benchmark::DoNotOptimize(diffs);
    }
}
BENCHMARK(BM_FaultConeSim);

void BM_Tdf64Batch(benchmark::State& state) {
    const Netlist& nl = test_circuit();
    TransitionFaultSim sim(nl);
    Prng rng(13);
    const std::size_t n = nl.comb_sources().size();
    std::vector<PatternPair> pats(64);
    for (auto& p : pats) {
        p.v1.resize(n);
        p.v2.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            p.v1[i] = rng.chance(0.5) ? 1 : 0;
            p.v2[i] = rng.chance(0.5) ? 1 : 0;
        }
    }
    const auto batch = sim.pack(pats, 0);
    const auto values = sim.evaluate(batch);
    const auto faults = enumerate_tdf_faults(nl);
    std::size_t fi = 0;
    for (auto _ : state) {
        const std::uint64_t m =
            sim.detect_mask(faults[fi % faults.size()], values);
        fi += 13;
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_Tdf64Batch);

void BM_SetCoverGreedy(benchmark::State& state) {
    Prng rng(21);
    SetCoverInstance inst;
    inst.num_elements = 400;
    inst.sets.resize(80);
    for (auto& s : inst.sets) {
        for (int k = 0; k < 40; ++k) {
            s.push_back(static_cast<std::uint32_t>(rng.next_below(400)));
        }
        std::sort(s.begin(), s.end());
        s.erase(std::unique(s.begin(), s.end()), s.end());
    }
    for (auto _ : state) {
        auto r = greedy_set_cover(inst);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_SetCoverGreedy);

void BM_SetCoverExact(benchmark::State& state) {
    Prng rng(22);
    SetCoverInstance inst;
    inst.num_elements = 120;
    inst.sets.resize(40);
    for (auto& s : inst.sets) {
        for (int k = 0; k < 18; ++k) {
            s.push_back(static_cast<std::uint32_t>(rng.next_below(120)));
        }
        std::sort(s.begin(), s.end());
        s.erase(std::unique(s.begin(), s.end()), s.end());
    }
    for (auto _ : state) {
        auto r = solve_set_cover(inst);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_SetCoverExact);

// Ablation: pulse-filter threshold 0 vs default (DESIGN.md).  Measures
// both runtime and the detection-interval count difference.
void BM_AblationPulseFilter(benchmark::State& state) {
    const bool filtered = state.range(0) != 0;
    const Netlist& nl = test_circuit();
    DelayAnnotation delays = test_delays();
    const StaResult sta = StaEngine(nl, delays).analyze();
    const WaveSim sim(nl, delays);
    const FaultSim fsim(sim);
    Prng rng(31);
    const std::size_t n = nl.comb_sources().size();
    std::vector<Bit> v1(n);
    std::vector<Bit> v2(n);
    for (std::size_t i = 0; i < n; ++i) {
        v1[i] = rng.chance(0.5) ? 1 : 0;
        v2[i] = rng.chance(0.5) ? 1 : 0;
    }
    const auto good = sim.simulate(v1, v2);
    const FaultUniverse universe = FaultUniverse::generate(nl, delays);
    const Time threshold = filtered ? delays.glitch_threshold() : 0.0;
    std::size_t intervals = 0;
    std::size_t fi = 0;
    for (auto _ : state) {
        const DelayFault& f = universe.fault(fi % universe.size());
        fi += 41;
        for (const ObserveDiff& od : fsim.simulate(f, good)) {
            IntervalSet iv = od.diff.ones(sta.clock_period);
            iv.filter_glitches(threshold);
            intervals += iv.size();
        }
    }
    state.counters["intervals"] = static_cast<double>(intervals);
}
BENCHMARK(BM_AblationPulseFilter)->Arg(0)->Arg(1);

// Ablation: discretization with unlimited vs capped candidates.
void BM_AblationDiscretize(benchmark::State& state) {
    Prng rng(33);
    std::vector<IntervalSet> ranges(600);
    for (auto& r : ranges) {
        const int k = 1 + static_cast<int>(rng.next_below(3));
        for (int i = 0; i < k; ++i) {
            const Time lo = rng.uniform(100.0, 900.0);
            r.add(lo, lo + rng.uniform(5.0, 120.0));
        }
    }
    DiscretizeOptions opts;
    opts.max_candidates = static_cast<std::size_t>(state.range(0));
    std::size_t candidates = 0;
    for (auto _ : state) {
        auto d = discretize_observation_times(ranges, opts);
        candidates = d.candidates.size();
        benchmark::DoNotOptimize(d);
    }
    state.counters["candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_AblationDiscretize)->Arg(0)->Arg(64)->Arg(384);

// End-to-end detection-engine measurement: DetectionAnalyzer::analyze
// over random patterns and a sampled fault universe, once serial
// (num_threads = 1) and once on the shared pool (num_threads = 0).
// The engine counters of both runs go into BENCH_detection.json.
void write_detection_artifact() {
    using fastmon::bench::DetectionBenchEntry;
    const Netlist& nl = test_circuit();
    const DelayAnnotation& delays = test_delays();
    const StaResult sta = StaEngine(nl, delays).analyze();
    const WaveSim sim(nl, delays);

    Prng rng(99);
    const std::size_t n = nl.comb_sources().size();
    std::vector<PatternPair> patterns(64);
    for (auto& p : patterns) {
        p.v1.resize(n);
        p.v2.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            p.v1[i] = rng.chance(0.5) ? 1 : 0;
            p.v2[i] = rng.chance(0.5) ? 1 : 0;
        }
    }

    const FaultUniverse universe = FaultUniverse::generate(nl, delays);
    std::vector<DelayFault> faults;
    for (std::size_t i = 0; i < universe.size(); i += 2) {
        faults.push_back(universe.fault(i));
    }

    std::vector<DetectionBenchEntry> entries;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
        DetectionAnalysisConfig dac;
        dac.glitch_threshold = delays.glitch_threshold();
        dac.horizon = sta.clock_period * 1.02;
        dac.num_threads = threads;
        const DetectionAnalyzer analyzer(sim, patterns, {}, dac);
        const auto ranges = analyzer.analyze(faults);
        benchmark::DoNotOptimize(ranges);
        DetectionBenchEntry e;
        e.name = threads == 1 ? "micro_serial" : "micro_pooled";
        e.counters = analyzer.counters();
        e.num_faults = faults.size();
        e.num_patterns = patterns.size();
        entries.push_back(std::move(e));
    }
    fastmon::bench::write_detection_json("BENCH_detection.json",
                                         "bench_micro", entries);
}

}  // namespace

int main(int argc, char** argv) {
    const fastmon::PhaseStopwatch total_watch;
    std::vector<fastmon::PhaseTime> phases;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    {
        const fastmon::PhaseStopwatch watch;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
        phases.push_back(watch.elapsed("google_benchmark"));
    }
    {
        const fastmon::PhaseStopwatch watch;
        write_detection_artifact();
        phases.push_back(watch.elapsed("detection_artifact"));
    }
    fastmon::bench::write_bench_manifest(
        "BENCH_manifest.json", "bench_micro",
        fastmon::bench::BenchSettings::from_env(), phases,
        total_watch.elapsed("total").wall_seconds);
    return 0;
}
