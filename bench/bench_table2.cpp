// Reproduces Table II: number of selected test frequencies
// (conventional / heuristic [17] / proposed ILP) and test time before
// and after schedule optimization.
#include <iostream>

#include "bench_common.hpp"
#include "flow/report.hpp"

int main() {
    using namespace fastmon;
    const bench::BenchSettings settings = bench::BenchSettings::from_env();
    settings.print_header(
        "Table II — selected test frequencies and test time");
    const std::vector<HdfFlowResult> rows =
        bench::run_all_profiles(settings);
    print_table2(std::cout, rows);
    std::cout << "\nShape checks (paper: ILP frequencies <= heuristic"
                 " frequencies; large test-time reductions):\n";
    bool ok = true;
    for (const HdfFlowResult& r : rows) {
        if (r.freq_prop > r.freq_heur) {
            std::cout << "  VIOLATION: " << r.circuit
                      << " ILP selected more frequencies than greedy\n";
            ok = false;
        }
        if (r.opti_pc > r.orig_pc) {
            std::cout << "  VIOLATION: " << r.circuit
                      << " optimized schedule larger than naive\n";
            ok = false;
        }
    }
    if (ok) {
        std::cout << "  all rows: prop <= heur and opti <= orig  [OK]\n";
    }
    return ok ? 0 : 1;
}
