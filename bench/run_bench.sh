#!/usr/bin/env bash
# Builds the Release tree and runs the perf benches, leaving the
# machine-readable engine counters in BENCH_detection.json and the run
# manifest (config, git describe, phase times, metrics snapshot) in
# BENCH_manifest.json.  The script FAILS if either artifact is missing
# or malformed, so CI catches a silently broken observability layer.
#
# Usage: bench/run_bench.sh [build-dir]
# Knobs: FASTMON_FAST=1 for a quick smoke run; FASTMON_MAX_GATES /
# FASTMON_MAX_FAULTS / FASTMON_PROFILES as documented in
# bench/bench_common.hpp.  FASTMON_TRACE=<path> additionally captures a
# Chrome trace of the bench run.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)" \
    --target bench_micro bench_fig3 bench_campaign bench_check

cd "$repo_root"

rm -f BENCH_manifest.json

echo "== micro benchmarks =="
"$build_dir/bench/bench_micro" --benchmark_min_time=0.05

echo
echo "== campaign engine (BENCH_campaign.json) =="
"$build_dir/bench/bench_campaign"

echo
echo "== detection engine counters (BENCH_detection.json) =="
cat BENCH_detection.json

# --- artifact validation: fail loudly, not silently -------------------
check_json() {
    local file="$1"
    if [[ ! -f "$file" ]]; then
        echo "ERROR: bench did not produce $file" >&2
        exit 1
    fi
    if ! python3 -m json.tool "$file" > /dev/null 2>&1; then
        echo "ERROR: $file is not valid JSON" >&2
        exit 1
    fi
}

check_json BENCH_detection.json
check_json BENCH_manifest.json
check_json BENCH_campaign.json
check_json BENCH_campaign.heartbeat.json

# The campaign artifact must carry the prediction-quality blocks and a
# non-degraded flow status for every entry.
python3 - <<'EOF'
import json, sys
with open("BENCH_campaign.json") as f:
    doc = json.load(f)
entries = doc.get("entries")
if not entries:
    sys.exit("ERROR: BENCH_campaign.json has no campaign entries")
for entry in entries:
    missing = [k for k in ("campaign", "aggregate", "run") if k not in entry]
    if missing:
        sys.exit(f"ERROR: campaign entry missing blocks: {missing}")
    label = entry["campaign"].get("circuit", "?")
    agg = entry["aggregate"]
    cls = agg.get("classification", {})
    for key in ("roc_auc", "average_precision"):
        value = cls.get(key)
        if value is None or not (0.0 <= value <= 1.0):
            sys.exit(f"ERROR: {label}: classification.{key}={value!r} "
                     "outside [0, 1]")
    for block in ("lead_time_years", "wearout"):
        if block not in agg:
            sys.exit(f"ERROR: {label}: aggregate missing '{block}'")
    status = entry["run"].get("status", {})
    if status.get("outcome") != "ok":
        sys.exit(f"ERROR: {label}: campaign flow status degraded: "
                 f"{json.dumps(status)}")
    print(f"campaign ok: {label} "
          f"(pop {entry['campaign']['population']:.0f}, "
          f"ROC AUC {cls['roc_auc']:.3f}, AP {cls['average_precision']:.3f})")

# The demo entry carries the three-way differential (batched SoA vs
# scalar incremental vs full-STA rebuild): the deterministic blocks
# must be identical and both recorded speedups positive finite ratios
# (regressions show up here before the aggregate wall time moves).
demo = entries[0]
for check in ("sta_check", "batch_check"):
    if demo.get(check) != "identical":
        sys.exit(f"ERROR: campaign differential diverged "
                 f"({check}={demo.get(check)!r})")
for key in ("sta_speedup", "batch_speedup"):
    value = demo.get(key)
    if not isinstance(value, (int, float)) or not (value > 0.0):
        sys.exit(f"ERROR: demo entry {key}={value!r} is not a "
                 "positive number")
width = demo.get("batch_width")
if not isinstance(width, int) or width < 1:
    sys.exit(f"ERROR: demo entry batch_width={width!r} is not a "
             "positive integer")
dps = demo.get("devices_per_sec")
if not isinstance(dps, (int, float)) or not (dps > 0.0):
    sys.exit(f"ERROR: demo entry devices_per_sec={dps!r} is not a "
             "positive number")
if demo.get("telemetry_check") != "identical":
    sys.exit(f"ERROR: telemetry changed the deterministic blocks "
             f"(telemetry_check={demo.get('telemetry_check')!r})")

# Mission-profile section: every built-in deployment ran its own
# scalar-vs-batched differential, and contrasting profiles must keep
# producing separated failure-year / ROC distributions.
if demo.get("mission_check") != "identical":
    sys.exit(f"ERROR: mission-profile differential diverged "
             f"(mission_check={demo.get('mission_check')!r})")
if demo.get("profiles_distinct") != "distinct":
    sys.exit(f"ERROR: built-in mission profiles no longer separate "
             f"(profiles_distinct={demo.get('profiles_distinct')!r})")
missions = demo.get("mission_profiles", {})
for name in ("server_247", "automotive_thermal_cycling", "mobile_bursty"):
    row = missions.get(name)
    if not row:
        sys.exit(f"ERROR: demo entry missing mission_profiles[{name!r}]")
    for key in ("roc_auc", "failure_p50", "lead_wide_p50", "failed",
                "failed_by_mechanism"):
        if key not in row:
            sys.exit(f"ERROR: mission_profiles[{name!r}] missing {key!r}")
    print(f"mission ok: {name} (ROC AUC {row['roc_auc']:.3f}, "
          f"failure p50 {row['failure_p50']:.2f} y, "
          f"failed {row['failed']:.0f})")
print(f"campaign differentials ok: identical blocks at width {width}, "
      f"batched {demo['batch_speedup']:.2f}x vs scalar, "
      f"scalar {demo['sta_speedup']:.2f}x vs full rebuild, "
      f"{dps:.0f} devices/sec")

# The heartbeat sidecar from the telemetry pass must have reached an
# honest terminal state covering the whole population, and its sketch
# telemetry must be embedded in the report's run block.
with open("BENCH_campaign.heartbeat.json") as f:
    hb = json.load(f)
if hb.get("schema") != "fastmon-heartbeat-v1":
    sys.exit(f"ERROR: unexpected heartbeat schema {hb.get('schema')!r}")
if hb.get("state") != "finished":
    sys.exit(f"ERROR: heartbeat ended in state {hb.get('state')!r}, "
             "expected 'finished'")
pop = demo["campaign"]["population"]
if hb.get("devices_done") != pop:
    sys.exit(f"ERROR: heartbeat devices_done={hb.get('devices_done')!r} "
             f"!= population {pop}")
telemetry = demo["run"].get("telemetry", {})
for key in ("roll_latency_us", "first_alert_years", "failure_years"):
    sketch = telemetry.get(key, {})
    if "summary" not in sketch or "sketch" not in sketch:
        sys.exit(f"ERROR: run.telemetry.{key} missing summary/sketch")
print(f"heartbeat ok: state={hb['state']}, "
      f"{hb['devices_done']:.0f}/{hb['devices_total']:.0f} devices, "
      f"{len(hb.get('workers', []))} worker slot(s)")
EOF

# The manifest must carry the blocks perf tracking relies on.
python3 - <<'EOF'
import json, sys
with open("BENCH_manifest.json") as f:
    m = json.load(f)
missing = [k for k in ("tool", "config", "phases", "metrics",
                       "total_wall_seconds") if k not in m]
if missing:
    sys.exit(f"ERROR: BENCH_manifest.json missing blocks: {missing}")
if not m["phases"]:
    sys.exit("ERROR: BENCH_manifest.json has no recorded phases")
print("manifest ok:", ", ".join(p["name"] for p in m["phases"]),
      f"({m['total_wall_seconds']:.2f} s total)")
EOF

echo "artifacts validated  [OK]"

# --- bench-history regression gate -----------------------------------
# Gate this run against the trajectory of comparable past runs (same
# fast flag + batch width) in BENCH_history.jsonl, THEN append it so
# the ledger only accumulates runs that passed both the schema
# validation above and the gate itself.  With fewer than three
# comparable entries the gate passes with a note, so fresh checkouts
# and regime changes (new width, new fast flag) bootstrap cleanly.
echo
echo "== bench history gate (BENCH_history.jsonl) =="
fast_args=()
if [[ "${FASTMON_FAST:-0}" == "1" ]]; then
    fast_args+=(--fast)
fi
git_describe="$(git -C "$repo_root" describe --always --dirty 2>/dev/null \
                || echo unknown)"
"$build_dir/tools/bench_check" check "${fast_args[@]}"
"$build_dir/tools/bench_check" append --git "$git_describe" "${fast_args[@]}"
