#!/usr/bin/env bash
# Builds the Release tree and runs the perf benches, leaving the
# machine-readable engine counters in BENCH_detection.json.
#
# Usage: bench/run_bench.sh [build-dir]
# Knobs: FASTMON_FAST=1 for a quick smoke run; FASTMON_MAX_GATES /
# FASTMON_MAX_FAULTS / FASTMON_PROFILES as documented in
# bench/bench_common.hpp.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)" --target bench_micro bench_fig3

cd "$repo_root"

echo "== micro benchmarks =="
"$build_dir/bench/bench_micro" --benchmark_min_time=0.05

echo
echo "== detection engine counters (BENCH_detection.json) =="
cat BENCH_detection.json
