#!/usr/bin/env bash
# Builds the Release tree and runs the perf benches, leaving the
# machine-readable engine counters in BENCH_detection.json and the run
# manifest (config, git describe, phase times, metrics snapshot) in
# BENCH_manifest.json.  The script FAILS if either artifact is missing
# or malformed, so CI catches a silently broken observability layer.
#
# Usage: bench/run_bench.sh [build-dir]
# Knobs: FASTMON_FAST=1 for a quick smoke run; FASTMON_MAX_GATES /
# FASTMON_MAX_FAULTS / FASTMON_PROFILES as documented in
# bench/bench_common.hpp.  FASTMON_TRACE=<path> additionally captures a
# Chrome trace of the bench run.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)" --target bench_micro bench_fig3 bench_campaign

cd "$repo_root"

rm -f BENCH_manifest.json

echo "== micro benchmarks =="
"$build_dir/bench/bench_micro" --benchmark_min_time=0.05

echo
echo "== campaign engine (BENCH_campaign.json) =="
"$build_dir/bench/bench_campaign"

echo
echo "== detection engine counters (BENCH_detection.json) =="
cat BENCH_detection.json

# --- artifact validation: fail loudly, not silently -------------------
check_json() {
    local file="$1"
    if [[ ! -f "$file" ]]; then
        echo "ERROR: bench did not produce $file" >&2
        exit 1
    fi
    if ! python3 -m json.tool "$file" > /dev/null 2>&1; then
        echo "ERROR: $file is not valid JSON" >&2
        exit 1
    fi
}

check_json BENCH_detection.json
check_json BENCH_manifest.json
check_json BENCH_campaign.json

# The campaign artifact must carry the prediction-quality blocks and a
# non-degraded flow status for every entry.
python3 - <<'EOF'
import json, sys
with open("BENCH_campaign.json") as f:
    doc = json.load(f)
entries = doc.get("entries")
if not entries:
    sys.exit("ERROR: BENCH_campaign.json has no campaign entries")
for entry in entries:
    missing = [k for k in ("campaign", "aggregate", "run") if k not in entry]
    if missing:
        sys.exit(f"ERROR: campaign entry missing blocks: {missing}")
    label = entry["campaign"].get("circuit", "?")
    agg = entry["aggregate"]
    cls = agg.get("classification", {})
    for key in ("roc_auc", "average_precision"):
        value = cls.get(key)
        if value is None or not (0.0 <= value <= 1.0):
            sys.exit(f"ERROR: {label}: classification.{key}={value!r} "
                     "outside [0, 1]")
    for block in ("lead_time_years", "wearout"):
        if block not in agg:
            sys.exit(f"ERROR: {label}: aggregate missing '{block}'")
    status = entry["run"].get("status", {})
    if status.get("outcome") != "ok":
        sys.exit(f"ERROR: {label}: campaign flow status degraded: "
                 f"{json.dumps(status)}")
    print(f"campaign ok: {label} "
          f"(pop {entry['campaign']['population']:.0f}, "
          f"ROC AUC {cls['roc_auc']:.3f}, AP {cls['average_precision']:.3f})")

# The demo entry carries the three-way differential (batched SoA vs
# scalar incremental vs full-STA rebuild): the deterministic blocks
# must be identical and both recorded speedups positive finite ratios
# (regressions show up here before the aggregate wall time moves).
demo = entries[0]
for check in ("sta_check", "batch_check"):
    if demo.get(check) != "identical":
        sys.exit(f"ERROR: campaign differential diverged "
                 f"({check}={demo.get(check)!r})")
for key in ("sta_speedup", "batch_speedup"):
    value = demo.get(key)
    if not isinstance(value, (int, float)) or not (value > 0.0):
        sys.exit(f"ERROR: demo entry {key}={value!r} is not a "
                 "positive number")
width = demo.get("batch_width")
if not isinstance(width, int) or width < 1:
    sys.exit(f"ERROR: demo entry batch_width={width!r} is not a "
             "positive integer")
dps = demo.get("devices_per_sec")
if not isinstance(dps, (int, float)) or not (dps > 0.0):
    sys.exit(f"ERROR: demo entry devices_per_sec={dps!r} is not a "
             "positive number")
print(f"campaign differentials ok: identical blocks at width {width}, "
      f"batched {demo['batch_speedup']:.2f}x vs scalar, "
      f"scalar {demo['sta_speedup']:.2f}x vs full rebuild, "
      f"{dps:.0f} devices/sec")
EOF

# The manifest must carry the blocks perf tracking relies on.
python3 - <<'EOF'
import json, sys
with open("BENCH_manifest.json") as f:
    m = json.load(f)
missing = [k for k in ("tool", "config", "phases", "metrics",
                       "total_wall_seconds") if k not in m]
if missing:
    sys.exit(f"ERROR: BENCH_manifest.json missing blocks: {missing}")
if not m["phases"]:
    sys.exit("ERROR: BENCH_manifest.json has no recorded phases")
print("manifest ok:", ", ".join(p["name"] for p in m["phases"]),
      f"({m['total_wall_seconds']:.2f} s total)")
EOF

echo "artifacts validated  [OK]"
