#include "netlist/structures.hpp"

#include <gtest/gtest.h>

#include "sim/logic_sim.hpp"

namespace fastmon {
namespace {

/// One clock step of a sequential circuit: evaluates the core with the
/// given PI values + current state and returns the next state (per FF).
std::vector<Bit> step(const Netlist& nl, const LogicSim& sim,
                      const std::vector<Bit>& pis,
                      const std::vector<Bit>& state) {
    std::vector<Bit> sources;
    sources.insert(sources.end(), pis.begin(), pis.end());
    sources.insert(sources.end(), state.begin(), state.end());
    const std::vector<Bit> values = sim.eval(sources);
    std::vector<Bit> next;
    for (GateId q : nl.flip_flops()) {
        next.push_back(values[nl.gate(q).fanin[0]]);
    }
    return next;
}

TEST(Structures, CounterCountsModulo2N) {
    const Netlist nl = make_counter(4);
    const LogicSim sim(nl);
    std::vector<Bit> state(4, 0);
    for (std::uint32_t expect = 1; expect <= 40; ++expect) {
        state = step(nl, sim, {1}, state);
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            value |= static_cast<std::uint32_t>(state[i]) << i;
        }
        EXPECT_EQ(value, expect % 16) << "step " << expect;
    }
}

TEST(Structures, CounterHoldsWhenDisabled) {
    const Netlist nl = make_counter(4);
    const LogicSim sim(nl);
    std::vector<Bit> state{1, 0, 1, 0};
    const std::vector<Bit> next = step(nl, sim, {0}, state);
    EXPECT_EQ(next, state);
}

TEST(Structures, Lfsr4HasMaximalPeriod) {
    const Netlist nl = make_lfsr(4, maximal_lfsr_taps(4));
    const LogicSim sim(nl);
    std::vector<Bit> state{1, 0, 0, 0};
    const std::vector<Bit> seed = state;
    std::size_t period = 0;
    for (std::size_t k = 1; k <= 16; ++k) {
        state = step(nl, sim, {1}, state);
        if (state == seed) {
            period = k;
            break;
        }
        // Never all-zero (the LFSR lock-up state).
        EXPECT_TRUE(std::any_of(state.begin(), state.end(),
                                [](Bit b) { return b != 0; }));
    }
    EXPECT_EQ(period, 15u);  // 2^4 - 1
}

TEST(Structures, Lfsr8HasMaximalPeriod) {
    const Netlist nl = make_lfsr(8, maximal_lfsr_taps(8));
    const LogicSim sim(nl);
    std::vector<Bit> state(8, 0);
    state[0] = 1;
    const std::vector<Bit> seed = state;
    std::size_t period = 0;
    for (std::size_t k = 1; k <= 256; ++k) {
        state = step(nl, sim, {1}, state);
        if (state == seed) {
            period = k;
            break;
        }
    }
    EXPECT_EQ(period, 255u);  // 2^8 - 1
}

TEST(Structures, LfsrHoldsWhenDisabled) {
    const Netlist nl = make_lfsr(4, maximal_lfsr_taps(4));
    const LogicSim sim(nl);
    std::vector<Bit> state{1, 1, 0, 1};
    EXPECT_EQ(step(nl, sim, {0}, state), state);
}

TEST(Structures, ShiftRegisterDelaysSerialInput) {
    const Netlist nl = make_shift_register(5);
    const LogicSim sim(nl);
    std::vector<Bit> state(5, 0);
    // Shift in the sequence 1,0,1,1,0 and read it back on q4.
    const std::vector<Bit> sequence{1, 0, 1, 1, 0};
    std::vector<Bit> observed;
    for (std::size_t k = 0; k < sequence.size() + 5; ++k) {
        const Bit in = k < sequence.size() ? sequence[k] : 0;
        state = step(nl, sim, {in}, state);
        observed.push_back(state[4]);
    }
    // After 5 steps the first input bit appears at the last stage.
    for (std::size_t k = 0; k < sequence.size(); ++k) {
        EXPECT_EQ(observed[4 + k], sequence[k]) << "position " << k;
    }
}

TEST(Structures, ParityTreeComputesParity) {
    const Netlist nl = make_parity_tree(3);  // 8 inputs
    const LogicSim sim(nl);
    for (std::uint32_t m = 0; m < 256; m += 7) {
        std::vector<Bit> pis(8);
        int ones = 0;
        for (int i = 0; i < 8; ++i) {
            pis[i] = (m >> i) & 1;
            ones += pis[i];
        }
        const std::vector<Bit> next = step(nl, sim, pis, {0});
        EXPECT_EQ(next[0], static_cast<Bit>(ones % 2)) << "m=" << m;
    }
}

TEST(Structures, RejectsDegenerateParameters) {
    EXPECT_THROW(make_lfsr(1, {}), std::invalid_argument);
    EXPECT_THROW(make_lfsr(4, {0}), std::invalid_argument);
    EXPECT_THROW(make_lfsr(4, {4}), std::invalid_argument);
    EXPECT_THROW(maximal_lfsr_taps(5), std::invalid_argument);
    EXPECT_THROW(make_counter(0), std::invalid_argument);
    EXPECT_THROW(make_shift_register(0), std::invalid_argument);
    EXPECT_THROW(make_parity_tree(0), std::invalid_argument);
    EXPECT_THROW(make_parity_tree(11), std::invalid_argument);
}

TEST(Structures, StructuresAreUsableByTheFlowStack) {
    // Smoke: STA + fault universe on each structure.
    for (const Netlist& nl :
         {make_lfsr(8, maximal_lfsr_taps(8)), make_counter(6),
          make_shift_register(8), make_parity_tree(4)}) {
        EXPECT_TRUE(nl.finalized());
        EXPECT_GT(nl.num_comb_gates(), 0u);
        EXPECT_GT(nl.observe_points().size(), 0u);
    }
}

}  // namespace
}  // namespace fastmon
