// The full flow on regular (non-random) circuit structures: regression
// against structural assumptions that only hold for random logic.
#include <gtest/gtest.h>

#include "flow/hdf_flow.hpp"
#include "netlist/structures.hpp"

namespace fastmon {
namespace {

class FlowOnStructure : public ::testing::TestWithParam<int> {};

Netlist structure_for(int which) {
    switch (which) {
        case 0: return make_lfsr(8, maximal_lfsr_taps(8));
        case 1: return make_counter(8);
        case 2: return make_shift_register(12);
        default: return make_parity_tree(4);
    }
}

TEST_P(FlowOnStructure, PipelineInvariantsHold) {
    const Netlist nl = structure_for(GetParam());
    HdfFlowConfig config;
    config.seed = 17;
    config.monitor_fraction = 0.5;
    config.atpg.max_random_batches = 20;
    config.atpg.max_idle_batches = 4;
    config.solver.time_limit_sec = 2.0;
    HdfFlow flow(nl, config);
    const HdfFlowResult r = flow.run();

    EXPECT_EQ(r.fault_universe,
              r.at_speed_detectable + r.timing_redundant + r.candidate_faults);
    EXPECT_GE(r.detected_prop, r.detected_conv);
    EXPECT_LE(r.opti_pc, r.orig_pc);
    EXPECT_EQ(r.schedule_uncovered, 0u);
    for (std::size_t k = 1; k < r.coverage_rows.size(); ++k) {
        EXPECT_LE(r.coverage_rows[k].num_frequencies,
                  r.coverage_rows[k - 1].num_frequencies);
    }
    // Coverage curve monotone on these regular structures too.
    const std::vector<double> factors{1.0, 2.0, 3.0};
    const auto curve = flow.coverage_curve(factors);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].prop, curve[i - 1].prop - 1e-12);
        EXPECT_GE(curve[i].conv, curve[i - 1].conv - 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Structures, FlowOnStructure,
                         ::testing::Range(0, 4));

// A shift register is the extreme "all paths equal and short" case:
// with only buffers between stages, (almost) every fault is either
// at-speed detectable or needs barely-faster-than-at-speed periods.
TEST(FlowOnShiftRegister, DegenerateTimingProfile) {
    const Netlist nl = make_shift_register(12);
    HdfFlowConfig config;
    config.seed = 19;
    config.monitor_fraction = 1.0;
    config.atpg.max_random_batches = 10;
    HdfFlow flow(nl, config);
    const HdfFlowResult r = flow.run();
    // Single-buffer stages: path = one gate, clk = 1.05 * path, so the
    // 1.2x-gate-delay fault eats the 5 % slack: all at-speed.
    EXPECT_EQ(r.at_speed_detectable, r.fault_universe);
}

}  // namespace
}  // namespace fastmon
