// POSIX process / lock plumbing under the fleet supervisor: spawn,
// shell-style exit encoding (code, 128+signal, 127 exec failure),
// non-blocking polls, kill-and-reap, per-child environment and output
// redirection, and flock-based exclusive file locks.
#include "util/subprocess.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "util/file_lock.hpp"

namespace fastmon {
namespace {

std::vector<std::string> sh(const std::string& script) {
    return {"/bin/sh", "-c", script};
}

class SubprocessTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("fastmon_proc_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
    [[nodiscard]] std::string path(const std::string& name) const {
        return (dir_ / name).string();
    }
    static std::string slurp(const std::string& p) {
        std::ifstream is(p, std::ios::binary);
        return {std::istreambuf_iterator<char>(is),
                std::istreambuf_iterator<char>()};
    }

    std::filesystem::path dir_;
};

TEST_F(SubprocessTest, ExitCodeIsReported) {
    auto child = Subprocess::spawn(sh("exit 7"));
    ASSERT_TRUE(child.has_value());
    EXPECT_EQ(child->exit_code(), 7);
    // Idempotent after the child is reaped.
    EXPECT_EQ(child->poll(), std::optional<int>(7));
}

TEST_F(SubprocessTest, SignalDeathEncodesAs128PlusSignal) {
    auto child = Subprocess::spawn(sh("kill -9 $$"));
    ASSERT_TRUE(child.has_value());
    EXPECT_EQ(child->exit_code(), 128 + 9);
}

TEST_F(SubprocessTest, ExecFailureSurfacesAs127) {
    auto child = Subprocess::spawn(
        {path("no_such_binary"), "--definitely-missing"});
    ASSERT_TRUE(child.has_value());  // the fork itself succeeded
    EXPECT_EQ(child->exit_code(), 127);
}

TEST_F(SubprocessTest, PollIsNonBlockingAndKillReaps) {
    auto child = Subprocess::spawn(sh("sleep 30"));
    ASSERT_TRUE(child.has_value());
    EXPECT_FALSE(child->poll().has_value());
    EXPECT_TRUE(child->running());
    EXPECT_TRUE(child->kill());
    EXPECT_EQ(child->exit_code(), 128 + 9);
    EXPECT_FALSE(child->running());
    EXPECT_FALSE(child->kill());  // already reaped
}

TEST_F(SubprocessTest, EnvOverridesAndOutputRedirection) {
    SpawnOptions options;
    options.env = {{"FASTMON_TEST_VALUE", "forty-two"}};
    options.output_path = path("out.log");
    auto child = Subprocess::spawn(
        sh("echo value=$FASTMON_TEST_VALUE; echo oops >&2"), options);
    ASSERT_TRUE(child.has_value());
    EXPECT_EQ(child->exit_code(), 0);
    const std::string log = slurp(path("out.log"));
    // Both streams land in the same per-attempt log.
    EXPECT_NE(log.find("value=forty-two"), std::string::npos) << log;
    EXPECT_NE(log.find("oops"), std::string::npos) << log;
}

TEST_F(SubprocessTest, DestructorReapsARunningChild) {
    pid_t pid = -1;
    {
        auto child = Subprocess::spawn(sh("sleep 30"));
        ASSERT_TRUE(child.has_value());
        pid = child->pid();
        EXPECT_TRUE(child->running());
    }
    // The destructor SIGKILLed and reaped: the pid is gone (or at
    // least no longer our child).  Give the kernel a beat.
    for (int i = 0; i < 100 && ::kill(pid, 0) == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_NE(::kill(pid, 0), 0);
}

TEST_F(SubprocessTest, FileLockIsExclusiveWhileHeld) {
    const std::string lock_path = path("ledger.lock");
    std::string error;
    auto lock = FileLock::exclusive(lock_path, &error);
    ASSERT_TRUE(lock.has_value()) << error;

    // A second open file description cannot take it...
    auto contender = FileLock::try_exclusive(lock_path, &error);
    EXPECT_FALSE(contender.has_value());
    EXPECT_NE(error.find("held"), std::string::npos) << error;

    // ...until the holder releases.
    lock.reset();
    EXPECT_TRUE(FileLock::try_exclusive(lock_path).has_value());
}

TEST_F(SubprocessTest, FileLockSerializesAgainstAnotherProcess) {
    const std::string lock_path = path("cross.lock");
    auto lock = FileLock::exclusive(lock_path);
    ASSERT_TRUE(lock.has_value());
    // A child using flock -n on the same file must lose.
    auto child = Subprocess::spawn(
        sh("exec 9>" + lock_path + " && flock -n 9 && exit 0; exit 33"));
    ASSERT_TRUE(child.has_value());
    EXPECT_EQ(child->exit_code(), 33);
    lock.reset();
    auto after = Subprocess::spawn(
        sh("exec 9>" + lock_path + " && flock -n 9 && exit 0; exit 33"));
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->exit_code(), 0);
}

}  // namespace
}  // namespace fastmon
