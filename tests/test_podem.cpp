#include "atpg/podem.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"

namespace fastmon {
namespace {

// y = AND(a, b) observed at a PO.
Netlist and_circuit() {
    NetlistBuilder b("and2");
    b.input("a").input("b");
    b.and2("y", "a", "b");
    b.output("y");
    return b.build();
}

TEST(Podem, DetectsStuckAtZeroOnAndOutput) {
    const Netlist nl = and_circuit();
    const Podem podem(nl);
    const GateId y = nl.find("y");
    const PodemResult r =
        podem.generate_test(FaultSite{y, FaultSite::kOutputPin}, false);
    ASSERT_EQ(r.status, PodemStatus::Success);
    // SA0 at y requires a = b = 1.
    EXPECT_TRUE(r.assigned[0]);
    EXPECT_TRUE(r.assigned[1]);
    EXPECT_EQ(r.vector[0], 1);
    EXPECT_EQ(r.vector[1], 1);
}

TEST(Podem, DetectsStuckAtOneOnAndInput) {
    const Netlist nl = and_circuit();
    const Podem podem(nl);
    const GateId y = nl.find("y");
    // SA1 on input pin 0: needs a=0 (activation) and b=1 (propagation).
    const PodemResult r = podem.generate_test(FaultSite{y, 0}, true);
    ASSERT_EQ(r.status, PodemStatus::Success);
    EXPECT_EQ(r.vector[0], 0);
    EXPECT_EQ(r.vector[1], 1);
}

TEST(Podem, JustifySetsInternalLine) {
    const Netlist nl = and_circuit();
    const Podem podem(nl);
    const GateId y = nl.find("y");
    const PodemResult r1 =
        podem.justify(FaultSite{y, FaultSite::kOutputPin}, true);
    ASSERT_EQ(r1.status, PodemStatus::Success);
    EXPECT_EQ(r1.vector[0], 1);
    EXPECT_EQ(r1.vector[1], 1);
    const PodemResult r0 =
        podem.justify(FaultSite{y, FaultSite::kOutputPin}, false);
    ASSERT_EQ(r0.status, PodemStatus::Success);
    EXPECT_TRUE(r0.vector[0] == 0 || r0.vector[1] == 0);
}

TEST(Podem, ProvesRedundancy) {
    // y = OR(a, AND(a, b)): the AND output stuck-at-0 is undetectable
    // (absorption: y == a regardless).
    NetlistBuilder b("redundant");
    b.input("a").input("b");
    b.and2("g", "a", "b");
    b.or2("y", "a", "g");
    b.output("y");
    const Netlist nl = b.build();
    const Podem podem(nl);
    const GateId g = nl.find("g");
    const PodemResult r =
        podem.generate_test(FaultSite{g, FaultSite::kOutputPin}, false);
    EXPECT_EQ(r.status, PodemStatus::Untestable);
}

TEST(Podem, PropagatesThroughReconvergence) {
    // y = XOR(n1, n2) with n1 = NAND(a, b), n2 = NOR(a, c): fault on a's
    // branch into n1.
    NetlistBuilder b("reconv");
    b.input("a").input("b").input("c");
    b.nand2("n1", "a", "b");
    b.nor2("n2", "a", "c");
    b.xor2("y", "n1", "n2");
    b.output("y");
    const Netlist nl = b.build();
    const Podem podem(nl);
    const GateId n1 = nl.find("n1");
    for (bool sv : {false, true}) {
        const PodemResult r = podem.generate_test(FaultSite{n1, 0}, sv);
        EXPECT_EQ(r.status, PodemStatus::Success) << "stuck " << sv;
    }
}

TEST(Podem, WorksThroughDffObservation) {
    // Fault only observable at a pseudo primary output (FF D input).
    NetlistBuilder b("ppo");
    b.input("a").input("b");
    b.nand2("n", "a", "b");
    b.dff("q", "n");
    b.output("q");
    const Netlist nl = b.build();
    const Podem podem(nl);
    const GateId n = nl.find("n");
    const PodemResult r =
        podem.generate_test(FaultSite{n, FaultSite::kOutputPin}, false);
    EXPECT_EQ(r.status, PodemStatus::Success);
}

// Exhaustive cross-check on s27: PODEM's verdict must agree with brute
// force over all 2^7 source assignments, for every fault site.
TEST(Podem, AgreesWithBruteForceOnS27) {
    const Netlist nl = make_s27();
    const LogicSim sim(nl);
    const std::size_t n_src = nl.comb_sources().size();
    ASSERT_LE(n_src, 16u);
    const Podem podem(nl, 100000);

    std::size_t checked = 0;
    for (GateId id = 0; id < nl.size(); ++id) {
        const Gate& g = nl.gate(id);
        if (!is_combinational(g.type)) continue;
        for (bool sv : {false, true}) {
            const FaultSite site{id, FaultSite::kOutputPin};
            // Brute force: is there an assignment where flipping the
            // site's value changes some observed output?
            bool detectable = false;
            for (std::uint32_t m = 0; m < (1u << n_src) && !detectable; ++m) {
                std::vector<Bit> src(n_src);
                for (std::size_t s = 0; s < n_src; ++s) {
                    src[s] = (m >> s) & 1;
                }
                const std::vector<Bit> good = sim.eval(src);
                if ((good[id] != 0) != !sv) continue;  // not activated
                // Faulty simulation: force the site to sv.
                // Re-evaluate manually with an overlay.
                std::vector<Bit> faulty(nl.size());
                for (GateId t : nl.topo_order()) {
                    const Gate& tg = nl.gate(t);
                    const std::uint32_t sidx = nl.source_index(t);
                    if (sidx != std::numeric_limits<std::uint32_t>::max()) {
                        faulty[t] = src[sidx];
                    } else {
                        bool ins[8];
                        for (std::size_t p = 0; p < tg.fanin.size(); ++p) {
                            ins[p] = faulty[tg.fanin[p]] != 0;
                        }
                        faulty[t] =
                            tg.type == CellType::Output
                                ? static_cast<Bit>(ins[0])
                                : static_cast<Bit>(eval_cell(
                                      tg.type,
                                      std::span<const bool>(
                                          ins, tg.fanin.size())));
                    }
                    if (t == id) faulty[t] = sv ? 1 : 0;
                }
                for (const ObservePoint& op : nl.observe_points()) {
                    if (good[op.signal] != faulty[op.signal]) {
                        detectable = true;
                        break;
                    }
                }
            }
            const PodemResult r = podem.generate_test(site, sv);
            ASSERT_NE(r.status, PodemStatus::Aborted);
            EXPECT_EQ(r.status == PodemStatus::Success, detectable)
                << nl.gate(id).name << " stuck " << sv;
            ++checked;
        }
    }
    EXPECT_EQ(checked, 20u);
}

// Property: on random circuits, every Success result is confirmed by
// logic simulation of the returned vector.
class PodemConfirmation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PodemConfirmation, SuccessVectorsDetect) {
    GeneratorConfig gc;
    gc.name = "podem_gen";
    gc.n_gates = 150;
    gc.n_ffs = 15;
    gc.n_inputs = 10;
    gc.n_outputs = 8;
    gc.depth = 8;
    gc.spread = 0.5;
    gc.seed = GetParam();
    const Netlist nl = generate_circuit(gc);
    const LogicSim sim(nl);
    const Podem podem(nl, 20000);
    const std::size_t n_src = nl.comb_sources().size();

    std::size_t successes = 0;
    std::size_t aborted = 0;
    for (GateId id = 0; id < nl.size(); id += 3) {
        const Gate& g = nl.gate(id);
        if (!is_combinational(g.type)) continue;
        const FaultSite site{id, FaultSite::kOutputPin};
        const bool sv = (id % 2) == 0;
        const PodemResult r = podem.generate_test(site, sv);
        if (r.status == PodemStatus::Aborted) {
            ++aborted;
            continue;
        }
        if (r.status != PodemStatus::Success) continue;
        ++successes;
        std::vector<Bit> src(n_src, 0);
        for (std::size_t s = 0; s < n_src; ++s) {
            src[s] = r.assigned[s] ? r.vector[s] : 0;
        }
        const std::vector<Bit> good = sim.eval(src);
        // Activation: site at !sv.
        EXPECT_EQ(good[id] != 0, !sv) << nl.gate(id).name;
        // Detection: flipping the site changes an observed value.
        std::vector<Bit> faulty(nl.size());
        for (GateId t : nl.topo_order()) {
            const Gate& tg = nl.gate(t);
            const std::uint32_t sidx = nl.source_index(t);
            if (sidx != std::numeric_limits<std::uint32_t>::max()) {
                faulty[t] = src[sidx];
            } else {
                bool ins[8];
                for (std::size_t p = 0; p < tg.fanin.size(); ++p) {
                    ins[p] = faulty[tg.fanin[p]] != 0;
                }
                faulty[t] = tg.type == CellType::Output
                                ? static_cast<Bit>(ins[0])
                                : static_cast<Bit>(eval_cell(
                                      tg.type, std::span<const bool>(
                                                   ins, tg.fanin.size())));
            }
            if (t == id) faulty[t] = sv ? 1 : 0;
        }
        bool detected = false;
        for (const ObservePoint& op : nl.observe_points()) {
            if (good[op.signal] != faulty[op.signal]) detected = true;
        }
        EXPECT_TRUE(detected) << nl.gate(id).name << " stuck " << sv;
    }
    EXPECT_GT(successes, 0u);
    // The abort rate must stay small on circuits of this size.
    EXPECT_LT(aborted, successes / 2 + 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PodemConfirmation,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace fastmon
