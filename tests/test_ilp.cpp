#include "opt/ilp.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace fastmon {
namespace {

LpRow row(std::vector<std::pair<std::uint32_t, double>> coeffs, double rhs) {
    LpRow r;
    r.coeffs = std::move(coeffs);
    r.rhs = rhs;
    return r;
}

TEST(Ilp, SimpleCover) {
    // Three sets, elements force at least sets {0,1} or {2} union ...
    // min x0+x1+x2 s.t. x0+x2>=1, x1+x2>=1 -> optimum 1 (x2).
    IlpProblem p;
    p.num_vars = 3;
    p.objective = {1.0, 1.0, 1.0};
    p.rows.push_back(row({{0, 1.0}, {2, 1.0}}, 1.0));
    p.rows.push_back(row({{1, 1.0}, {2, 1.0}}, 1.0));
    const IlpSolution s = solve_01_ilp(p);
    ASSERT_TRUE(s.feasible);
    EXPECT_TRUE(s.proven_optimal);
    EXPECT_NEAR(s.objective, 1.0, 1e-9);
    EXPECT_EQ(s.x[2], 1);
}

TEST(Ilp, InfeasibleDetected) {
    // x0 >= 1 and -x0 >= 0 (x0 <= 0): impossible.
    IlpProblem p;
    p.num_vars = 1;
    p.objective = {1.0};
    p.rows.push_back(row({{0, 1.0}}, 1.0));
    p.rows.push_back(row({{0, -1.0}}, 0.0));
    const IlpSolution s = solve_01_ilp(p);
    EXPECT_FALSE(s.feasible);
}

TEST(Ilp, NegativeCostsAttract) {
    // min -x0 + x1 s.t. x0 + x1 >= 1 -> x0 = 1, x1 = 0, objective -1.
    IlpProblem p;
    p.num_vars = 2;
    p.objective = {-1.0, 1.0};
    p.rows.push_back(row({{0, 1.0}, {1, 1.0}}, 1.0));
    const IlpSolution s = solve_01_ilp(p);
    ASSERT_TRUE(s.feasible);
    EXPECT_NEAR(s.objective, -1.0, 1e-9);
    EXPECT_EQ(s.x[0], 1);
    EXPECT_EQ(s.x[1], 0);
}

TEST(Ilp, IntegralityGapCase) {
    // Vertex cover of a triangle: LP gives 1.5, ILP must give 2.
    IlpProblem p;
    p.num_vars = 3;
    p.objective = {1.0, 1.0, 1.0};
    p.rows.push_back(row({{0, 1.0}, {1, 1.0}}, 1.0));
    p.rows.push_back(row({{1, 1.0}, {2, 1.0}}, 1.0));
    p.rows.push_back(row({{0, 1.0}, {2, 1.0}}, 1.0));
    const IlpSolution s = solve_01_ilp(p);
    ASSERT_TRUE(s.feasible);
    EXPECT_TRUE(s.proven_optimal);
    EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Ilp, UnconstrainedPicksAllNegative) {
    IlpProblem p;
    p.num_vars = 4;
    p.objective = {-2.0, 3.0, -0.5, 0.0};
    const IlpSolution s = solve_01_ilp(p);
    ASSERT_TRUE(s.feasible);
    EXPECT_NEAR(s.objective, -2.5, 1e-9);
}

/// Brute-force 0-1 optimum for cross-checking.
double brute_force(const IlpProblem& p, bool& feasible) {
    double best = 1e18;
    feasible = false;
    for (std::uint32_t m = 0; m < (1u << p.num_vars); ++m) {
        bool ok = true;
        for (const LpRow& r : p.rows) {
            double lhs = 0.0;
            for (const auto& [j, c] : r.coeffs) {
                if ((m >> j) & 1) lhs += c;
            }
            if (lhs < r.rhs - 1e-9) {
                ok = false;
                break;
            }
        }
        if (!ok) continue;
        feasible = true;
        double obj = 0.0;
        for (std::size_t j = 0; j < p.num_vars; ++j) {
            if ((m >> j) & 1) obj += p.objective[j];
        }
        best = std::min(best, obj);
    }
    return best;
}

// Property: solver agrees with brute force on random small instances.
class IlpBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlpBruteForce, MatchesExhaustiveSearch) {
    Prng rng(GetParam() * 31 + 7);
    for (int instance = 0; instance < 20; ++instance) {
        IlpProblem p;
        p.num_vars = 8;
        p.objective.resize(p.num_vars);
        for (double& c : p.objective) {
            c = std::floor(rng.uniform(-3.0, 6.0));
        }
        const std::size_t n_rows = 1 + rng.next_below(6);
        for (std::size_t r = 0; r < n_rows; ++r) {
            LpRow lr;
            for (std::uint32_t j = 0; j < p.num_vars; ++j) {
                if (rng.chance(0.4)) {
                    lr.coeffs.emplace_back(
                        j, std::floor(rng.uniform(-2.0, 4.0)));
                }
            }
            if (lr.coeffs.empty()) lr.coeffs.emplace_back(0, 1.0);
            lr.rhs = std::floor(rng.uniform(-2.0, 4.0));
            p.rows.push_back(lr);
        }
        bool bf_feasible = false;
        const double bf = brute_force(p, bf_feasible);
        const IlpSolution s = solve_01_ilp(p);
        ASSERT_EQ(s.feasible, bf_feasible) << "instance " << instance;
        if (bf_feasible) {
            ASSERT_TRUE(s.proven_optimal);
            EXPECT_NEAR(s.objective, bf, 1e-6) << "instance " << instance;
            // Returned x must itself be feasible.
            for (const LpRow& r : p.rows) {
                double lhs = 0.0;
                for (const auto& [j, c] : r.coeffs) {
                    if (s.x[j] != 0) lhs += c;
                }
                EXPECT_GE(lhs, r.rhs - 1e-9);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpBruteForce,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Ilp, BudgetExhaustionReturnsIncumbent) {
    // A larger cover instance with a 1-node budget: not proven optimal,
    // but the greedy incumbent must be feasible.
    Prng rng(5);
    IlpProblem p;
    p.num_vars = 40;
    p.objective.assign(40, 1.0);
    for (int e = 0; e < 60; ++e) {
        LpRow r;
        r.rhs = 1.0;
        r.coeffs.emplace_back(static_cast<std::uint32_t>(e % 40), 1.0);
        for (int k = 0; k < 3; ++k) {
            r.coeffs.emplace_back(
                static_cast<std::uint32_t>(rng.next_below(40)), 1.0);
        }
        p.rows.push_back(r);
    }
    IlpConfig cfg;
    cfg.max_nodes = 1;
    const IlpSolution s = solve_01_ilp(p, cfg);
    ASSERT_TRUE(s.feasible);
    EXPECT_FALSE(s.proven_optimal);
}

}  // namespace
}  // namespace fastmon
