#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

#include "atpg/pattern.hpp"
#include "util/log.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace fastmon {
namespace {

TEST(Prng, DeterministicStream) {
    Prng a(42);
    Prng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
    Prng c(43);
    Prng d(42);
    bool differs = false;
    for (int i = 0; i < 10; ++i) {
        if (c.next_u64() != d.next_u64()) differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Prng, NextBelowIsInRange) {
    Prng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
        EXPECT_EQ(rng.next_below(1), 0u);
    }
}

TEST(Prng, UniformCoversRange) {
    Prng rng(9);
    double lo = 1e9;
    double hi = -1e9;
    for (int i = 0; i < 5000; ++i) {
        const double v = rng.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_LT(lo, 2.1);
    EXPECT_GT(hi, 4.9);
}

TEST(Prng, NormalHasRightMoments) {
    Prng rng(11);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) {
        stats.add(rng.normal(10.0, 2.0));
    }
    EXPECT_NEAR(stats.mean(), 10.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Prng, ChanceFrequency) {
    Prng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        if (rng.chance(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.03);
}

TEST(RunningStats, WelfordMatchesDirect) {
    RunningStats s;
    const std::vector<double> values{1.0, 4.0, 9.0, 16.0, 25.0};
    double sum = 0.0;
    for (double v : values) {
        s.add(v);
        sum += v;
    }
    const double mean = sum / 5.0;
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= 4.0;
    EXPECT_EQ(s.count(), 5u);
    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 25.0);
}

TEST(RunningStats, FewSamples) {
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(Percentile, InterpolatesLinearly) {
    std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, EdgeCases) {
    // Empty and single-sample inputs must not index out of range.
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 50.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
    // Out-of-range p clamps to the extremes instead of extrapolating.
    std::vector<double> v{10.0, 20.0, 30.0};
    EXPECT_DOUBLE_EQ(percentile(v, -5.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 250.0), 30.0);
}

TEST(Percentile, RejectsNan) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    // NaN entries would poison the sort order; they are dropped before
    // ranking, so the result matches the clean subset.
    EXPECT_DOUBLE_EQ(percentile({10.0, nan, 30.0}, 50.0), 20.0);
    EXPECT_DOUBLE_EQ(percentile({nan, nan}, 50.0), 0.0);
}

TEST(Prng, StreamIsDeterministicPerId) {
    Prng a = Prng::stream(99, 5);
    Prng b = Prng::stream(99, 5);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
    // Neighbouring stream ids decorrelate.
    Prng c = Prng::stream(99, 6);
    Prng d = Prng::stream(99, 5);
    bool differs = false;
    for (int i = 0; i < 8; ++i) {
        if (c.next_u64() != d.next_u64()) differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Prng, StreamsSplitAcrossThreadsMatchSerial) {
    // The campaign determinism contract: device i draws only from
    // Prng::stream(seed, i), so sharding the index range across any
    // number of threads reproduces the serial sequence exactly.
    constexpr std::uint64_t kSeed = 2026;
    constexpr std::size_t kStreams = 64;
    std::vector<std::uint64_t> serial(kStreams);
    for (std::size_t i = 0; i < kStreams; ++i) {
        serial[i] = Prng::stream(kSeed, i).next_u64();
    }
    std::vector<std::uint64_t> threaded(kStreams);
    std::vector<std::thread> workers;
    constexpr std::size_t kWorkers = 4;
    for (std::size_t w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&threaded, w] {
            for (std::size_t i = w; i < kStreams; i += kWorkers) {
                threaded[i] = Prng::stream(kSeed, i).next_u64();
            }
        });
    }
    for (std::thread& t : workers) t.join();
    EXPECT_EQ(threaded, serial);
}

TEST(RocAuc, RanksSeparatedClasses) {
    const std::vector<ClassifierSample> perfect{
        {0.9, true}, {0.8, true}, {0.2, false}, {0.1, false}};
    EXPECT_DOUBLE_EQ(roc_auc(perfect), 1.0);
    const std::vector<ClassifierSample> inverted{
        {0.9, false}, {0.8, false}, {0.2, true}, {0.1, true}};
    EXPECT_DOUBLE_EQ(roc_auc(inverted), 0.0);
    // 3 of the 4 (positive, negative) pairs rank correctly.
    const std::vector<ClassifierSample> mixed{
        {0.9, true}, {0.8, false}, {0.7, true}, {0.6, false}};
    EXPECT_DOUBLE_EQ(roc_auc(mixed), 0.75);
}

TEST(RocAuc, MidrankTiesAndDegenerateClasses) {
    // Tied scores count half a concordant pair (midrank convention):
    // pairs are (1 vs 1) = 0.5 and (2 vs 1) = 1 out of 2.
    const std::vector<ClassifierSample> tied{
        {1.0, true}, {2.0, true}, {1.0, false}};
    EXPECT_DOUBLE_EQ(roc_auc(tied), 0.75);
    // A single-class population carries no ranking information.
    const std::vector<ClassifierSample> only_pos{{1.0, true}, {2.0, true}};
    EXPECT_DOUBLE_EQ(roc_auc(only_pos), 0.5);
    EXPECT_DOUBLE_EQ(roc_auc({}), 0.5);
}

TEST(PrecisionRecall, CurveAndAveragePrecision) {
    const std::vector<ClassifierSample> samples{
        {0.9, true}, {0.8, false}, {0.7, true}, {0.6, false}};
    const std::vector<PrPoint> curve = precision_recall_curve(samples);
    ASSERT_EQ(curve.size(), 4u);  // one point per distinct threshold
    EXPECT_DOUBLE_EQ(curve[0].threshold, 0.9);
    EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
    EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
    EXPECT_DOUBLE_EQ(curve[2].threshold, 0.7);
    EXPECT_DOUBLE_EQ(curve[2].precision, 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(curve[2].recall, 1.0);
    // AP = 0.5 * 1.0 (first positive) + 0.5 * 2/3 (second positive).
    EXPECT_NEAR(average_precision(samples), 0.5 + 0.5 * 2.0 / 3.0, 1e-12);
    // No positives: an empty curve and zero AP, not a division by zero.
    const std::vector<ClassifierSample> negatives{{0.4, false}, {0.1, false}};
    EXPECT_TRUE(precision_recall_curve(negatives).empty());
    EXPECT_DOUBLE_EQ(average_precision(negatives), 0.0);
}

TEST(TextTable, AlignsColumns) {
    TextTable t({"A", "LongHeader"});
    t.begin_row();
    t.cell(std::string("x"));
    t.cell(static_cast<long long>(42));
    t.begin_row();
    t.cell(std::string("longer"));
    t.cell_percent(12.25);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| A      | LongHeader |"), std::string::npos);
    EXPECT_NE(out.find("(+12.2%)"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TextTable, FixedPointCell) {
    TextTable t({"v"});
    t.begin_row();
    t.cell(3.14159, 3);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3.142"), std::string::npos);
}

TEST(Log, LevelsFilter) {
    const LogLevel before = log_level();
    set_log_level(LogLevel::Quiet);
    // No observable output check without capturing stderr; exercise the
    // paths for coverage and restore.
    log_info() << "hidden " << 1;
    log_warn() << "hidden " << 2;
    set_log_level(LogLevel::Debug);
    log_debug() << "visible";
    set_log_level(before);
    SUCCEED();
}

TEST(PatternIo, RoundTrip) {
    TestSet set;
    set.patterns.push_back(PatternPair{{1, 0, 1}, {0, 0, 1}});
    set.patterns.push_back(PatternPair{{0, 0, 0}, {1, 1, 1}});
    const std::string text = write_patterns_string(set);
    const TestSet back = read_patterns_string(text, 3);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.patterns[0], set.patterns[0]);
    EXPECT_EQ(back.patterns[1], set.patterns[1]);
}

TEST(PatternIo, RejectsBadInput) {
    EXPECT_THROW(read_patterns_string("101 00\n", 3), std::runtime_error);
    EXPECT_THROW(read_patterns_string("10x 001\n", 3), std::runtime_error);
    EXPECT_THROW(read_patterns_string("101\n", 3), std::runtime_error);
    // Comments and blank lines are fine.
    const TestSet ok = read_patterns_string("# header\n\n101 010\n", 3);
    EXPECT_EQ(ok.size(), 1u);
}

}  // namespace
}  // namespace fastmon
