#include "schedule/freq_select.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace fastmon {
namespace {

TEST(Stabbing, SimpleChain) {
    std::vector<IntervalSet> ranges(3);
    ranges[0].add(0.0, 10.0);
    ranges[1].add(5.0, 15.0);
    ranges[2].add(20.0, 30.0);
    const auto points = stabbing_periods(ranges);
    ASSERT_TRUE(points.has_value());
    EXPECT_EQ(points->size(), 2u);  // one pierces [5,10), one [20,30)
    for (const IntervalSet& r : ranges) {
        bool hit = false;
        for (Time t : *points) {
            if (r.contains(t)) hit = true;
        }
        EXPECT_TRUE(hit);
    }
}

TEST(Stabbing, RefusesMultiIntervalRanges) {
    std::vector<IntervalSet> ranges(1);
    ranges[0].add(0.0, 1.0);
    ranges[0].add(5.0, 6.0);
    EXPECT_FALSE(stabbing_periods(ranges).has_value());
}

TEST(Stabbing, SkipsEmptyRanges) {
    std::vector<IntervalSet> ranges(3);
    ranges[1].add(2.0, 4.0);
    const auto points = stabbing_periods(ranges);
    ASSERT_TRUE(points.has_value());
    EXPECT_EQ(points->size(), 1u);
}

// Property: stabbing is optimal; the branch-and-bound covering over the
// discretized candidates must find the same count on single-interval
// instances — validating the whole ILP path.
class StabbingVsIlp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StabbingVsIlp, SameOptimalCount) {
    Prng rng(GetParam() * 1009 + 17);
    std::vector<IntervalSet> ranges(80);
    for (auto& r : ranges) {
        const Time lo = rng.uniform(0.0, 300.0);
        r.add(lo, lo + rng.uniform(3.0, 50.0));
    }
    FrequencySelectOptions stab;
    stab.method = SelectMethod::Stabbing;
    FrequencySelectOptions bnb;
    bnb.method = SelectMethod::BranchAndBound;
    const FrequencySelection ss = select_frequencies(ranges, stab);
    const FrequencySelection sb = select_frequencies(ranges, bnb);
    ASSERT_TRUE(ss.feasible);
    ASSERT_TRUE(ss.proven_optimal);
    ASSERT_TRUE(sb.feasible);
    EXPECT_EQ(ss.num_covered_faults, ranges.size());
    if (sb.proven_optimal) {
        EXPECT_EQ(sb.periods.size(), ss.periods.size());
    } else {
        EXPECT_GE(sb.periods.size(), ss.periods.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StabbingVsIlp,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Stabbing, FallsBackOnMultiIntervalInstances) {
    Prng rng(55);
    std::vector<IntervalSet> ranges(30);
    for (auto& r : ranges) {
        for (int k = 0; k < 2; ++k) {
            const Time lo = rng.uniform(0.0, 100.0);
            r.add(lo, lo + rng.uniform(1.0, 10.0));
        }
    }
    FrequencySelectOptions stab;
    stab.method = SelectMethod::Stabbing;
    const FrequencySelection sel = select_frequencies(ranges, stab);
    EXPECT_TRUE(sel.feasible);  // served by the branch-and-bound fallback
}

}  // namespace
}  // namespace fastmon
