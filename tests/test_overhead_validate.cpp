#include <gtest/gtest.h>

#include <sstream>

#include "monitor/overhead.hpp"
#include "netlist/iscas_data.hpp"
#include "schedule/validate.hpp"
#include "timing/sta_engine.hpp"

namespace fastmon {
namespace {

TEST(Overhead, MonitorCostScalesWithElements) {
    const MonitorCostModel model;
    EXPECT_GT(model.monitor_ge(1), 0.0);
    EXPECT_GT(model.monitor_ge(4), model.monitor_ge(1));
    EXPECT_NEAR(model.monitor_ge(4) - model.monitor_ge(3),
                model.delay_element_ge + model.mux_ge_per_input, 1e-12);
}

TEST(Overhead, CircuitGateEquivalentsPositive) {
    const Netlist nl = make_s27();
    const double ge = circuit_gate_equivalents(nl);
    // 10 gates + 3 FFs: at least ~14 GE.
    EXPECT_GT(ge, 10.0);
    EXPECT_LT(ge, 40.0);
}

TEST(Overhead, ReportConsistency) {
    const Netlist nl = make_mini_adder();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const MonitorPlacement p = place_paper_monitors(nl, sta);
    const OverheadReport r = estimate_overhead(nl, p);
    EXPECT_EQ(r.num_monitors, p.num_monitors());
    EXPECT_EQ(r.delay_elements_per_monitor, 4u);
    EXPECT_NEAR(r.area_overhead, r.monitors_ge / r.circuit_ge, 1e-12);
    EXPECT_GT(r.area_overhead, 0.0);
    // 25 % monitors on a small circuit stay a modest fraction.
    EXPECT_LT(r.area_overhead, 0.5);
}

TEST(Validate, AcceptsCoveringSchedule) {
    TestSchedule s;
    s.periods = {100.0, 200.0};
    s.entries = {{0, 3, 1}, {1, 5, 0}};
    const std::vector<DetectionEntry> entries{
        {0, 3, 1, 0},  // fault 0 by the first application
        {1, 5, 0, 1},  // fault 1 by the second
        {2, 3, 1, 0},  // fault 2 also by the first
    };
    const std::vector<std::uint32_t> targets{0, 1, 2};
    const ScheduleValidation v = validate_schedule(s, entries, targets);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.covered, 3u);
}

TEST(Validate, FlagsMissingFault) {
    TestSchedule s;
    s.periods = {100.0};
    s.entries = {{0, 3, 1}};
    const std::vector<DetectionEntry> entries{
        {0, 3, 1, 0},
        {1, 4, 1, 0},  // fault 1 needs pattern 4, which is not scheduled
    };
    const std::vector<std::uint32_t> targets{0, 1};
    const ScheduleValidation v = validate_schedule(s, entries, targets);
    EXPECT_FALSE(v.valid);
    ASSERT_EQ(v.uncovered_faults.size(), 1u);
    EXPECT_EQ(v.uncovered_faults[0], 1u);
}

TEST(Validate, CsvGroupsByPeriod) {
    TestSchedule s;
    s.periods = {300.0, 150.0};
    s.entries = {{0, 7, 2}, {1, 1, 0}, {0, 2, 1}};
    std::ostringstream os;
    write_schedule_csv(os, s);
    const std::string out = os.str();
    EXPECT_NE(out.find("period_ps,frequency_index,pattern,config"),
              std::string::npos);
    // 150 ps rows come before 300 ps rows.
    EXPECT_LT(out.find("150,1,1,0"), out.find("300,0,2,1"));
    EXPECT_LT(out.find("300,0,2,1"), out.find("300,0,7,2"));
}

}  // namespace
}  // namespace fastmon
