#include <cmath>

#include <gtest/gtest.h>

#include "atpg/bist.hpp"
#include "atpg/metrics.hpp"
#include "atpg/tdf_atpg.hpp"
#include "fault/fault.hpp"
#include "netlist/iscas_data.hpp"
#include "timing/sta_engine.hpp"

namespace fastmon {
namespace {

TEST(Prpg, StreamIsDeterministicAndBalanced) {
    Prpg a(32, 7);
    Prpg b(32, 7);
    std::size_t ones = 0;
    for (int i = 0; i < 4096; ++i) {
        const Bit bit = a.next_bit();
        EXPECT_EQ(bit, b.next_bit());
        ones += bit;
    }
    // Maximal LFSR: ~50 % ones.
    EXPECT_NEAR(static_cast<double>(ones) / 4096.0, 0.5, 0.05);
}

TEST(Prpg, ZeroSeedIsRepaired) {
    Prpg p(16, 0);
    // A stuck all-zero LFSR would emit only zeros.
    std::size_t ones = 0;
    for (int i = 0; i < 64; ++i) ones += p.next_bit();
    EXPECT_GT(ones, 0u);
}

TEST(Prpg, Lfsr16HasFullPeriod) {
    Prpg p(16, 1);
    const std::uint64_t seed_state = p.state();
    std::size_t period = 0;
    for (std::size_t k = 1; k <= (1u << 16); ++k) {
        p.next_bit();
        if (p.state() == seed_state) {
            period = k;
            break;
        }
    }
    EXPECT_EQ(period, (1u << 16) - 1);
}

TEST(Prpg, PatternsHaveRightShape) {
    Prpg p(32, 3);
    const auto pats = p.generate(10, 20);
    ASSERT_EQ(pats.size(), 20u);
    for (const PatternPair& pp : pats) {
        EXPECT_EQ(pp.v1.size(), 10u);
        EXPECT_EQ(pp.v2.size(), 10u);
    }
    // Different patterns (overwhelmingly likely).
    EXPECT_NE(pats[0], pats[1]);
}

TEST(Misr, OrderSensitiveSignatures) {
    Misr a(32);
    Misr b(32);
    const std::vector<Bit> r1{1, 0, 1};
    const std::vector<Bit> r2{0, 1, 1};
    a.absorb(r1);
    a.absorb(r2);
    b.absorb(r2);
    b.absorb(r1);
    EXPECT_NE(a.signature(), b.signature());
    // Same order -> same signature.
    Misr c(32);
    c.absorb(r1);
    c.absorb(r2);
    EXPECT_EQ(a.signature(), c.signature());
}

TEST(Misr, SingleBitFlipChangesSignature) {
    Misr good(32);
    Misr bad(32);
    for (int cycle = 0; cycle < 50; ++cycle) {
        std::vector<Bit> r(16, 0);
        r[cycle % 16] = 1;
        good.absorb(r);
        if (cycle == 20) r[3] ^= 1;
        bad.absorb(r);
    }
    EXPECT_NE(good.signature(), bad.signature());
    EXPECT_NEAR(good.aliasing_probability(), std::pow(2.0, -32), 1e-18);
}

TEST(Bist, MisrDetectsDelayFaultsAtFastPeriod) {
    const Netlist nl = make_mini_alu();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const WaveSim sim(nl, ann);

    Prpg prpg(32, 11);
    const auto patterns = prpg.generate(nl.comb_sources().size(), 48);

    const FaultUniverse universe = FaultUniverse::generate(nl, ann);
    std::vector<DelayFault> faults(universe.faults().begin(),
                                   universe.faults().begin() + 60);

    // At the nominal period almost nothing is detected (HDFs hide);
    // inside the FAST window detection appears.
    const BistCoverage at_speed = misr_fault_coverage(
        sim, patterns, faults, sta.clock_period);
    const BistCoverage fast = misr_fault_coverage(
        sim, patterns, faults, 0.55 * sta.clock_period);
    EXPECT_GT(fast.detected, at_speed.detected);
    EXPECT_EQ(fast.detected + fast.aliased, fast.response_diffs);
    // 32-bit MISR: aliasing should be absent on this scale.
    EXPECT_EQ(fast.aliased, 0u);
    EXPECT_EQ(fast.period, 0.55 * sta.clock_period);
}

TEST(Metrics, CoverageCurveIsMonotoneAndConsistent) {
    const Netlist nl = make_s27();
    AtpgConfig cfg;
    cfg.seed = 5;
    const AtpgResult atpg = generate_tdf_tests(nl, cfg);
    const PatternSetMetrics m =
        evaluate_pattern_set(nl, atpg.test_set.patterns);
    EXPECT_EQ(m.num_patterns, atpg.test_set.size());
    EXPECT_EQ(m.num_faults, 56u);
    EXPECT_EQ(m.detected, atpg.num_detected);
    EXPECT_NEAR(m.coverage, atpg.coverage(), 1e-12);
    // Monotone cumulative curve ending at `detected`.
    for (std::size_t p = 1; p < m.cumulative_detected.size(); ++p) {
        EXPECT_GE(m.cumulative_detected[p], m.cumulative_detected[p - 1]);
    }
    EXPECT_EQ(m.cumulative_detected.back(), m.detected);
    // N-detect histogram is non-increasing in n and starts at detected.
    ASSERT_EQ(m.n_detect_histogram.size(), 5u);
    EXPECT_EQ(m.n_detect_histogram[0], m.detected);
    for (std::size_t n = 1; n < m.n_detect_histogram.size(); ++n) {
        EXPECT_LE(m.n_detect_histogram[n], m.n_detect_histogram[n - 1]);
    }
    EXPECT_GT(m.mean_toggle_rate, 0.0);
    EXPECT_LE(m.mean_toggle_rate, 1.0);
}

TEST(Metrics, EmptyPatternSet) {
    const Netlist nl = make_s27();
    const PatternSetMetrics m = evaluate_pattern_set(nl, {});
    EXPECT_EQ(m.detected, 0u);
    EXPECT_EQ(m.num_patterns, 0u);
}

}  // namespace
}  // namespace fastmon
