#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"
#include "timing/sta_engine.hpp"

namespace fastmon {
namespace {

// A chain: a -> inv1 -> inv2 -> y, plus a direct branch a -> y2.
Netlist chain_circuit() {
    NetlistBuilder b("chain");
    b.input("a");
    b.inv("inv1", "a");
    b.inv("inv2", "inv1");
    b.buf("y", "inv2");
    b.buf("y2", "a");
    b.output("y");
    b.output("y2");
    return b.build();
}

TEST(DelayModel, NominalDelaysMatchLibrary) {
    const Netlist nl = chain_circuit();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const CellLibrary& lib = CellLibrary::nangate45();
    const GateId inv1 = nl.find("inv1");
    const PinDelay d = ann.arc(inv1, 0);
    const PinDelay expect = lib.nominal_delay(CellType::Inv, 1, 0);
    EXPECT_DOUBLE_EQ(d.rise, expect.rise);
    EXPECT_DOUBLE_EQ(d.fall, expect.fall);
    EXPECT_GT(ann.nominal_gate_delay(inv1), 0.0);
}

TEST(DelayModel, FanoutLoadAddsDelay) {
    // "a" drives inv1 and y2 (fanout 2) -> its consumers see load; the
    // load is charged at the consuming arc of the driver?  No: load is
    // charged on the arcs of the *driving* gate.  Here inv1 has fanout 1
    // and a PI drives two sinks (PIs have no arcs), so compare inv1
    // (fanout 1) against a variant where inv1 drives two gates.
    NetlistBuilder b("load");
    b.input("a");
    b.inv("g", "a");
    b.buf("s1", "g");
    b.buf("s2", "g");
    b.output("s1");
    b.output("s2");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const CellLibrary& lib = CellLibrary::nangate45();
    const PinDelay loaded = ann.arc(nl.find("g"), 0);
    const PinDelay bare = lib.nominal_delay(CellType::Inv, 1, 0);
    EXPECT_DOUBLE_EQ(loaded.rise, bare.rise + lib.load_delay_per_fanout());
}

TEST(DelayModel, VariationIsDeterministicAndBounded) {
    const Netlist nl = generate_circuit(
        GeneratorConfig{"var", 200, 20, 8, 8, 10, 0.5, 3});
    const DelayAnnotation a = DelayAnnotation::with_variation(nl, 0.2, 42);
    const DelayAnnotation b = DelayAnnotation::with_variation(nl, 0.2, 42);
    const DelayAnnotation c = DelayAnnotation::with_variation(nl, 0.2, 43);
    const DelayAnnotation nom = DelayAnnotation::nominal(nl);
    bool any_diff_seed = false;
    for (GateId id = 0; id < nl.size(); ++id) {
        const Gate& g = nl.gate(id);
        for (std::uint32_t p = 0; p < g.fanin.size(); ++p) {
            EXPECT_DOUBLE_EQ(a.arc(id, p).rise, b.arc(id, p).rise);
            if (std::abs(a.arc(id, p).rise - c.arc(id, p).rise) > 1e-12) {
                any_diff_seed = true;
            }
            if (is_combinational(g.type)) {
                // 3-sigma clipping at 20 %: factor within [0.4, 1.6].
                const double nom_rise = nom.arc(id, p).rise;
                EXPECT_GE(a.arc(id, p).rise, 0.3 * nom_rise);
                EXPECT_LE(a.arc(id, p).rise, 1.7 * nom_rise);
            }
        }
    }
    EXPECT_TRUE(any_diff_seed);
}

TEST(DelayModel, ScaleGateAffectsOnlyThatGate) {
    const Netlist nl = chain_circuit();
    DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const GateId inv1 = nl.find("inv1");
    const GateId inv2 = nl.find("inv2");
    const PinDelay before2 = ann.arc(inv2, 0);
    const PinDelay before1 = ann.arc(inv1, 0);
    ann.scale_gate(inv1, 2.0);
    EXPECT_DOUBLE_EQ(ann.arc(inv1, 0).rise, 2.0 * before1.rise);
    EXPECT_DOUBLE_EQ(ann.arc(inv2, 0).rise, before2.rise);
}

TEST(Sta, ChainArrivalIsSumOfDelays) {
    const Netlist nl = chain_circuit();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const GateId inv1 = nl.find("inv1");
    const GateId inv2 = nl.find("inv2");
    const GateId y = nl.find("y");
    const Time d1 = std::max(ann.arc(inv1, 0).rise, ann.arc(inv1, 0).fall);
    const Time d2 = std::max(ann.arc(inv2, 0).rise, ann.arc(inv2, 0).fall);
    const Time d3 = std::max(ann.arc(y, 0).rise, ann.arc(y, 0).fall);
    EXPECT_NEAR(sta.max_arrival[y], d1 + d2 + d3, 1e-9);
    EXPECT_NEAR(sta.critical_path_length, d1 + d2 + d3, 1e-9);
    EXPECT_NEAR(sta.clock_period, 1.05 * (d1 + d2 + d3), 1e-9);
}

TEST(Sta, MinArrivalTracksFastestPath) {
    const Netlist nl = chain_circuit();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const GateId y2 = nl.find("y2");
    EXPECT_LT(sta.max_arrival[y2], sta.critical_path_length);
    EXPECT_LE(sta.min_arrival[y2], sta.max_arrival[y2]);
}

TEST(Sta, PathThroughEqualsArrivalPlusDownstream) {
    const Netlist nl = make_s27();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    for (GateId id = 0; id < nl.size(); ++id) {
        EXPECT_NEAR(sta.path_through[id],
                    sta.max_arrival[id] + sta.downstream[id], 1e-9);
        EXPECT_GE(sta.max_arrival[id], sta.min_arrival[id] - 1e-9);
    }
}

TEST(Sta, PathThroughNeverExceedsCpl) {
    const Netlist nl = generate_circuit(
        GeneratorConfig{"sta_gen", 400, 40, 10, 10, 12, 0.6, 9});
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    for (GateId id = 0; id < nl.size(); ++id) {
        if (!is_combinational(nl.gate(id).type)) continue;
        EXPECT_LE(sta.path_through[id], sta.critical_path_length + 1e-9)
            << nl.gate(id).name;
        EXPECT_GE(sta.slack(id), 0.05 * sta.critical_path_length - 1e-9);
    }
}

TEST(Sta, BruteForceAgreementOnSmallCircuit) {
    // Enumerate all source-to-sink paths of s27 and compare the longest
    // against STA.
    const Netlist nl = make_s27();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();

    // DFS from each node computing the longest downstream by memo-free
    // recursion (small circuit).
    std::vector<Time> longest_from(nl.size(), -1.0);
    auto dfs = [&](auto&& self, GateId id) -> Time {
        const Gate& g = nl.gate(id);
        Time best = 0.0;
        bool is_sink_driver = false;
        for (GateId out : g.fanout) {
            const Gate& og = nl.gate(out);
            if (og.type == CellType::Output || og.type == CellType::Dff) {
                is_sink_driver = true;
                continue;
            }
            for (std::uint32_t p = 0; p < og.fanin.size(); ++p) {
                if (og.fanin[p] != id) continue;
                const PinDelay d = ann.arc(out, p);
                best = std::max(best,
                                std::max(d.rise, d.fall) + self(self, out));
            }
        }
        (void)is_sink_driver;
        return best;
    };
    Time cpl = 0.0;
    for (GateId src : nl.comb_sources()) {
        cpl = std::max(cpl, dfs(dfs, src));
    }
    EXPECT_NEAR(cpl, sta.critical_path_length, 1e-9);
}

TEST(Sta, ObservePointsSortedByArrival) {
    const Netlist nl = make_s27();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const auto ordered = observe_points_by_path_length(nl, sta);
    ASSERT_EQ(ordered.size(), nl.observe_points().size());
    for (std::size_t i = 1; i < ordered.size(); ++i) {
        EXPECT_GE(sta.max_arrival[ordered[i - 1].signal],
                  sta.max_arrival[ordered[i].signal]);
    }
}

TEST(Sta, ClockMarginParameter) {
    const Netlist nl = make_s27();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult tight = StaEngine(nl, ann, 1.0).analyze();
    const StaResult wide = StaEngine(nl, ann, 1.6).analyze();
    EXPECT_NEAR(wide.clock_period, 1.6 * tight.clock_period, 1e-9);
    EXPECT_NEAR(tight.clock_period, tight.critical_path_length, 1e-9);
}

}  // namespace
}  // namespace fastmon
