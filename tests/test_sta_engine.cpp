// Differential tests for the incremental StaEngine: every update(delta)
// must be bit-for-bit identical (EXPECT_EQ on doubles, no tolerance) to
// transforming the base annotation from scratch and running a full
// pass, across sparse defect extras, dense aging scales, uniform
// factors (power-of-two fast path and the general fallback), delta
// reverts, and rebases.  The LifetimeSimulator section checks the
// monitor-augmented outputs: Incremental and FullRebuild modes yield
// equal LifetimePoints.
#include "timing/sta_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "monitor/aging.hpp"
#include "monitor/placement.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

// Bitwise equality between a live engine result and the from-scratch
// reference; any tolerance here would hide an order-of-operations bug.
void expect_bitwise_equal(const StaResult& got, const StaResult& want) {
    ASSERT_EQ(got.max_arrival.size(), want.max_arrival.size());
    for (std::size_t i = 0; i < want.max_arrival.size(); ++i) {
        EXPECT_EQ(got.max_arrival[i], want.max_arrival[i]) << "gate " << i;
        EXPECT_EQ(got.min_arrival[i], want.min_arrival[i]) << "gate " << i;
        EXPECT_EQ(got.downstream[i], want.downstream[i]) << "gate " << i;
        EXPECT_EQ(got.path_through[i], want.path_through[i]) << "gate " << i;
    }
    EXPECT_EQ(got.critical_path_length, want.critical_path_length);
    EXPECT_EQ(got.clock_period, want.clock_period);
}

StaResult reference_sta(const Netlist& nl, const DelayAnnotation& base,
                        const DelayDelta& delta, double margin = 1.05) {
    const DelayAnnotation degraded = base.transformed(delta);
    StaEngine fresh(nl, degraded, margin);
    fresh.analyze();
    return fresh.take_result();
}

struct EngineFixture : ::testing::Test {
    Netlist nl = generate_circuit(
        GeneratorConfig{"engine_diff", 300, 24, 8, 8, 10, 0.55, 77});
    DelayAnnotation base = DelayAnnotation::with_variation(nl, 0.08, 5);
    std::vector<GateId> comb = [this] {
        std::vector<GateId> ids;
        for (GateId id = 0; id < nl.size(); ++id) {
            if (is_combinational(nl.gate(id).type)) ids.push_back(id);
        }
        return ids;
    }();
};

TEST_F(EngineFixture, AnalyzeMatchesFullScopeFromScratch) {
    StaEngine engine(nl, base);
    const StaResult& got = engine.analyze();
    // A full-scope single-pass engine is the reference the removed
    // run_sta() shim used to wrap; analyze() must match it bitwise.
    StaEngine full(nl, base, 1.05, StaEngine::Scope::Full);
    full.analyze();
    const StaResult reference = full.take_result();
    expect_bitwise_equal(got, reference);
    EXPECT_EQ(engine.stats().full_passes, 1u);
}

TEST_F(EngineFixture, SparseDefectExtrasMatchFromScratch) {
    StaEngine engine(nl, base);
    engine.analyze();
    Prng rng = Prng::stream(11, 0xD1FFULL);
    for (int round = 0; round < 12; ++round) {
        DelayDelta delta;
        const int touches = 1 + round % 3;
        for (int k = 0; k < touches; ++k) {
            const GateId g =
                comb[static_cast<std::size_t>(rng.next_below(comb.size()))];
            const std::uint32_t fanin =
                static_cast<std::uint32_t>(nl.gate(g).fanin.size());
            const std::uint32_t pin =
                rng.next_below(2) == 0
                    ? DelayDelta::kAllPins
                    : static_cast<std::uint32_t>(rng.next_below(fanin));
            delta.add(g, pin, rng.uniform(0.5, 25.0));
        }
        expect_bitwise_equal(engine.update(delta),
                             reference_sta(nl, base, delta));
    }
    EXPECT_GT(engine.stats().incremental_updates, 0u);
    EXPECT_GT(engine.stats().nodes_pruned + engine.stats().nodes_repropagated,
              0u);
}

TEST_F(EngineFixture, DenseAgingScalesMatchFromScratch) {
    StaEngine engine(nl, base);
    Prng rng = Prng::stream(12, 0xA6E5ULL);
    for (int round = 0; round < 6; ++round) {
        DelayDelta delta;
        for (const GateId g : comb) {
            delta.scale(g, 1.0 + rng.uniform(0.0, 0.3));
        }
        expect_bitwise_equal(engine.update(delta),
                             reference_sta(nl, base, delta));
    }
}

TEST_F(EngineFixture, MixedScaleAndExtraOrderIsPreserved) {
    // A scale and an extra on the SAME gate: the contract applies scales
    // before extras, i.e. extra is not multiplied.
    StaEngine engine(nl, base);
    const GateId g = comb[comb.size() / 2];
    DelayDelta delta;
    delta.scale(g, 1.4);
    delta.add(g, DelayDelta::kAllPins, 7.25);
    delta.scale(comb.front(), 2.0);
    expect_bitwise_equal(engine.update(delta), reference_sta(nl, base, delta));
}

TEST_F(EngineFixture, PowerOfTwoUniformScaleUsesExactRescale) {
    StaEngine engine(nl, base);
    engine.analyze();
    for (const double factor : {2.0, 0.5, 4.0, 1.0, 0.25}) {
        DelayDelta delta;
        delta.uniform_scale = factor;
        expect_bitwise_equal(engine.update(delta),
                             reference_sta(nl, base, delta));
    }
    // All five applied through the O(n) rescale path, no repropagation.
    EXPECT_GE(engine.stats().scaled_updates, 4u);
    EXPECT_EQ(engine.stats().nodes_repropagated, 0u);
}

TEST_F(EngineFixture, NonPowerOfTwoUniformScaleFallsBack) {
    StaEngine engine(nl, base);
    for (const double factor : {1.1, 0.93, 3.0}) {
        DelayDelta delta;
        delta.uniform_scale = factor;
        expect_bitwise_equal(engine.update(delta),
                             reference_sta(nl, base, delta));
    }
    EXPECT_EQ(engine.stats().scaled_updates, 0u);
}

TEST_F(EngineFixture, UniformScaleComposesWithPerGateEntries) {
    StaEngine engine(nl, base);
    DelayDelta delta;
    delta.uniform_scale = 1.07;
    delta.scale(comb.front(), 1.5);
    delta.add(comb.back(), DelayDelta::kAllPins, 3.0);
    expect_bitwise_equal(engine.update(delta), reference_sta(nl, base, delta));
}

TEST_F(EngineFixture, DeltasAreAbsoluteNotCumulative) {
    // Gate dirty in update k but absent from update k+1 reverts to base.
    StaEngine engine(nl, base);
    const GateId a = comb[1];
    const GateId b = comb[comb.size() - 2];
    DelayDelta first;
    first.add(a, DelayDelta::kAllPins, 40.0);
    first.scale(b, 3.0);
    engine.update(first);

    DelayDelta second;
    second.scale(b, 1.2);  // `a` is gone: must revert
    expect_bitwise_equal(engine.update(second),
                         reference_sta(nl, base, second));

    DelayDelta empty;  // everything reverts to the plain base
    expect_bitwise_equal(engine.update(empty), reference_sta(nl, base, empty));
}

TEST_F(EngineFixture, EmptyDeltaOnValidEngineIsCached) {
    StaEngine engine(nl, base);
    engine.analyze();
    const std::uint64_t full_before = engine.stats().full_passes;
    DelayDelta empty;
    expect_bitwise_equal(engine.update(empty),
                         reference_sta(nl, base, empty));
    EXPECT_EQ(engine.stats().full_passes, full_before);
    EXPECT_EQ(engine.stats().nodes_repropagated, 0u);
}

TEST_F(EngineFixture, RebaseRetargetsWithoutReallocation) {
    const DelayAnnotation other = DelayAnnotation::with_variation(nl, 0.12, 99);
    StaEngine engine(nl, base);
    engine.analyze();
    engine.rebase(other);
    DelayDelta delta;
    delta.add(comb[3], DelayDelta::kAllPins, 9.0);
    expect_bitwise_equal(engine.update(delta), reference_sta(nl, other, delta));
    EXPECT_EQ(engine.stats().rebases, 1u);

    // And back again: results follow the new base exactly.
    engine.rebase(base);
    expect_bitwise_equal(engine.analyze(),
                         reference_sta(nl, base, DelayDelta{}));
}

TEST_F(EngineFixture, ArrivalsScopeMatchesArrivalFields) {
    StaEngine full(nl, base, 1.05, StaEngine::Scope::Full);
    StaEngine arrivals(nl, base, 1.05, StaEngine::Scope::Arrivals);
    DelayDelta delta;
    delta.scale(comb[0], 1.8);
    delta.add(comb[2], DelayDelta::kAllPins, 5.0);
    const StaResult& f = full.update(delta);
    const StaResult& a = arrivals.update(delta);
    for (GateId id = 0; id < nl.size(); ++id) {
        EXPECT_EQ(a.max_arrival[id], f.max_arrival[id]);
        EXPECT_EQ(a.min_arrival[id], f.min_arrival[id]);
        EXPECT_EQ(a.downstream[id], 0.0);
        EXPECT_EQ(a.path_through[id], 0.0);
    }
    EXPECT_EQ(a.critical_path_length, f.critical_path_length);
    EXPECT_EQ(a.clock_period, f.clock_period);
}

TEST_F(EngineFixture, TakeResultInvalidatesThenRecovers) {
    StaEngine engine(nl, base);
    engine.analyze();
    const StaResult owned = engine.take_result();
    EXPECT_EQ(owned.max_arrival.size(), nl.size());
    // The engine recovers via a fresh full pass on the next update.
    DelayDelta delta;
    delta.add(comb[0], DelayDelta::kAllPins, 2.0);
    expect_bitwise_equal(engine.update(delta), reference_sta(nl, base, delta));
}

TEST_F(EngineFixture, MovedFromEngineIsInvalidAndTargetStaysLive) {
    StaEngine source(nl, base);
    const StaResult before = [&] {
        source.analyze();
        StaResult copy = source.result();
        return copy;
    }();

    // Move construction: the target owns the arenas and the cached
    // result; the source is left invalid (destroy/assign-only).
    StaEngine target(std::move(source));
    EXPECT_FALSE(source.valid());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(target.valid());
    expect_bitwise_equal(target.result(), before);

    // The target is fully functional: updates match from-scratch.
    DelayDelta delta;
    delta.add(comb[1], DelayDelta::kAllPins, 3.5);
    expect_bitwise_equal(target.update(delta), reference_sta(nl, base, delta));

    // Move assignment nulls the new source the same way, and a
    // moved-from engine can be assigned a live one again.
    StaEngine replacement(nl, base);
    replacement.analyze();
    source = std::move(replacement);
    EXPECT_FALSE(replacement.valid());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(source.valid());
    expect_bitwise_equal(source.result(), before);
    expect_bitwise_equal(source.update(delta), reference_sta(nl, base, delta));
}

TEST(StaEngineS27, ClockMarginFlowsThroughUpdates) {
    const Netlist nl = make_s27();
    const DelayAnnotation base = DelayAnnotation::nominal(nl);
    StaEngine engine(nl, base, 1.6);
    DelayDelta delta;
    delta.uniform_scale = 1.25;
    const StaResult& got = engine.update(delta);
    expect_bitwise_equal(got, reference_sta(nl, base, delta, 1.6));
    EXPECT_EQ(got.clock_period, 1.6 * got.critical_path_length);
}

// --- Monitor-augmented differential: LifetimeSimulator modes --------

struct LifetimeDiffFixture : ::testing::Test {
    Netlist nl = make_mini_alu();
    DelayAnnotation base = DelayAnnotation::with_variation(nl, 0.05, 21);
    StaResult sta = StaEngine(nl, base, 1.6).analyze();
    MonitorPlacement placement = place_paper_monitors(nl, sta);
    AgingModel aging{0.4, 0.8, 10.0};

    MarginalDefect make_defect() const {
        // Put the defect on the critical-path gate so it is monitored.
        GateId worst = 0;
        for (GateId id = 0; id < nl.size(); ++id) {
            if (!is_combinational(nl.gate(id).type)) continue;
            if (sta.path_through[id] > sta.path_through[worst]) worst = id;
        }
        MarginalDefect d;
        d.site.gate = worst;
        d.site.pin = FaultSite::kOutputPin;
        d.delta0 = 1.5;
        d.growth_per_year = 0.9;
        d.delta_max = 60.0;
        return d;
    }
};

TEST_F(LifetimeDiffFixture, IncrementalEqualsFullRebuildPoints) {
    std::vector<double> grid;
    for (double y = 0.0; y <= 12.0; y += 0.75) grid.push_back(y);

    LifetimeSimulator inc(nl, base, sta.clock_period, aging, 3);
    LifetimeSimulator full(nl, base, sta.clock_period, aging, 3);
    inc.add_defect(make_defect());
    full.add_defect(make_defect());
    inc.set_sta_mode(LifetimeSimulator::StaMode::Incremental);
    full.set_sta_mode(LifetimeSimulator::StaMode::FullRebuild);

    const auto a = inc.sweep(grid, placement);
    const auto b = full.sweep(grid, placement);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "grid point " << grid[i];
    }
    EXPECT_EQ(inc.first_alert_years(grid, placement),
              full.first_alert_years(grid, placement));
}

TEST_F(LifetimeDiffFixture, SharedEngineIsRebasedPerDevice) {
    // One engine handed to two simulators with different bases, as the
    // campaign worker does across its device shard.
    const DelayAnnotation other = DelayAnnotation::with_variation(nl, 0.05, 22);
    StaEngine engine(nl, base, 1.0, StaEngine::Scope::Arrivals);
    std::vector<double> grid{0.0, 2.0, 6.0, 10.0};

    LifetimeSimulator first(nl, base, sta.clock_period, aging, 3, &engine);
    const auto pts_first = first.sweep(grid, placement);

    LifetimeSimulator second(nl, other, sta.clock_period, aging, 3, &engine);
    const auto pts_second = second.sweep(grid, placement);

    LifetimeSimulator lone(nl, other, sta.clock_period, aging, 3);
    EXPECT_EQ(pts_second, lone.sweep(grid, placement));
    // Re-run the first device on the shared engine: rebase restores it.
    LifetimeSimulator again(nl, base, sta.clock_period, aging, 3, &engine);
    EXPECT_EQ(pts_first, again.sweep(grid, placement));
}

TEST_F(LifetimeDiffFixture, DegradationDeltaMatchesDegradedAnnotation) {
    LifetimeSimulator sim(nl, base, sta.clock_period, aging, 3);
    sim.add_defect(make_defect());
    const DelayDelta delta = sim.degradation_delta(5.0);
    const DelayAnnotation via_delta = base.transformed(delta);
    const DelayAnnotation via_sim = sim.degraded(5.0);
    for (GateId id = 0; id < nl.size(); ++id) {
        const auto fanin = nl.gate(id).fanin.size();
        for (std::uint32_t p = 0; p < fanin; ++p) {
            EXPECT_EQ(via_delta.arc(id, p).rise, via_sim.arc(id, p).rise);
            EXPECT_EQ(via_delta.arc(id, p).fall, via_sim.arc(id, p).fall);
        }
    }
}

}  // namespace
}  // namespace fastmon
