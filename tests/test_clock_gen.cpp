#include "schedule/clock_gen.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace fastmon {
namespace {

ClockGenConfig small_gen() {
    ClockGenConfig c;
    c.reference_period = 1000.0;
    c.multiplier_min = 2;
    c.multiplier_max = 16;
    c.divider_min = 1;
    c.divider_max = 16;
    return c;
}

TEST(ClockGen, NearestReturnsRealizablePeriod) {
    const ClockGenerator gen(small_gen());
    const ClockSetting s = gen.nearest(333.0);
    EXPECT_NEAR(s.period,
                1000.0 * static_cast<double>(s.divider) /
                    static_cast<double>(s.multiplier),
                1e-9);
    // 1/3 is realizable exactly (divider 1, multiplier 3 not in range;
    // but e.g. 4/12 = 1/3 with m=12, d=4).
    EXPECT_NEAR(s.period, 1000.0 / 3.0, 1.0);
}

TEST(ClockGen, QuantizeRespectsWindow) {
    const ClockGenerator gen(small_gen());
    const auto s = gen.quantize(500.0, 480.0, 520.0);
    ASSERT_TRUE(s.has_value());
    EXPECT_GE(s->period, 480.0);
    EXPECT_LT(s->period, 520.0);
    EXPECT_NEAR(s->period, 500.0, 20.0);
    // Impossible window below the grid floor:
    // min period = ref * d_min / m_max = 1000/16 = 62.5.
    EXPECT_FALSE(gen.quantize(10.0, 5.0, 20.0).has_value());
}

TEST(ClockGen, GridErrorShrinksWithRicherGenerator) {
    const ClockGenerator coarse(small_gen());
    ClockGenConfig rich_cfg = small_gen();
    rich_cfg.multiplier_max = 128;
    rich_cfg.divider_max = 256;
    const ClockGenerator rich(rich_cfg);
    const double e_coarse = coarse.max_relative_error(200.0, 900.0);
    const double e_rich = rich.max_relative_error(200.0, 900.0);
    EXPECT_LT(e_rich, e_coarse);
    EXPECT_LT(e_rich, 0.01);  // sub-percent with a dense grid
}

TEST(ClockGen, RelockTimeFromConfig) {
    ClockGenConfig c = small_gen();
    c.relock_reference_cycles = 150.0;
    const ClockGenerator gen(c);
    EXPECT_NEAR(gen.relock_time(), 150000.0, 1e-9);
}

TEST(ClockGen, QuantizeSelectionReportsCoverageLoss) {
    // One fault detectable only in a sliver no realizable period hits.
    ClockGenConfig c;
    c.reference_period = 1000.0;
    c.multiplier_min = 1;
    c.multiplier_max = 4;
    c.divider_min = 1;
    c.divider_max = 4;  // realizable: 250, 333, 500, 666, 750, 1000, ...
    const ClockGenerator gen(c);
    std::vector<IntervalSet> ranges(2);
    ranges[0].add(490.0, 510.0);  // realizable 500 inside
    ranges[1].add(410.0, 420.0);  // nothing realizable inside
    const std::vector<Time> ideal{500.0, 415.0};
    const QuantizedSelection q = quantize_selection(gen, ideal, ranges);
    ASSERT_EQ(q.periods.size(), 2u);
    EXPECT_NEAR(q.periods[0], 500.0, 1e-9);
    EXPECT_EQ(q.unrealizable, 1u);
    ASSERT_EQ(q.coverage_lost.size(), 1u);
    EXPECT_EQ(q.coverage_lost[0], 1u);
}

// Property: quantizing with a dense default generator keeps nearly all
// coverage on wide detection ranges.
class ClockQuantProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClockQuantProperty, DenseGridPreservesWideRangeCoverage) {
    Prng rng(GetParam() * 313);
    const ClockGenerator gen;  // default dense config
    std::vector<IntervalSet> ranges(60);
    std::vector<Time> periods;
    for (auto& r : ranges) {
        const Time lo = rng.uniform(200.0, 900.0);
        r.add(lo, lo + rng.uniform(15.0, 60.0));  // wide ranges
    }
    // Pierce each range at its midpoint (mimicking discretization).
    for (const auto& r : ranges) periods.push_back(r[0].midpoint());
    const QuantizedSelection q = quantize_selection(gen, periods, ranges);
    EXPECT_EQ(q.unrealizable, 0u);
    EXPECT_TRUE(q.coverage_lost.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockQuantProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace fastmon
