#include "netlist/generator.hpp"

#include <gtest/gtest.h>

namespace fastmon {
namespace {

GeneratorConfig small_config(std::uint64_t seed, double spread) {
    GeneratorConfig c;
    c.name = "gen_test";
    c.n_gates = 600;
    c.n_ffs = 60;
    c.n_inputs = 12;
    c.n_outputs = 12;
    c.depth = 14;
    c.spread = spread;
    c.seed = seed;
    return c;
}

TEST(Generator, ProducesRequestedSizes) {
    const Netlist nl = generate_circuit(small_config(1, 0.5));
    EXPECT_EQ(nl.num_comb_gates(), 600u);
    EXPECT_EQ(nl.flip_flops().size(), 60u);
    EXPECT_EQ(nl.primary_inputs().size(), 12u);
    // Extra pads may be added for dangling gates.
    EXPECT_GE(nl.primary_outputs().size(), 12u);
}

TEST(Generator, DeterministicForSameSeed) {
    const Netlist a = generate_circuit(small_config(7, 0.5));
    const Netlist b = generate_circuit(small_config(7, 0.5));
    ASSERT_EQ(a.size(), b.size());
    for (GateId id = 0; id < a.size(); ++id) {
        EXPECT_EQ(a.gate(id).type, b.gate(id).type);
        EXPECT_EQ(a.gate(id).fanin, b.gate(id).fanin);
    }
}

TEST(Generator, DifferentSeedsDiffer) {
    const Netlist a = generate_circuit(small_config(1, 0.5));
    const Netlist b = generate_circuit(small_config(2, 0.5));
    bool any_diff = a.size() != b.size();
    for (GateId id = 0; !any_diff && id < a.size(); ++id) {
        any_diff = a.gate(id).type != b.gate(id).type ||
                   a.gate(id).fanin != b.gate(id).fanin;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Generator, ReachesTargetDepth) {
    const Netlist nl = generate_circuit(small_config(3, 0.5));
    EXPECT_GE(nl.depth(), 13u);  // target 14; the PO pads add one level
}

TEST(Generator, NoDanglingGates) {
    const Netlist nl = generate_circuit(small_config(4, 0.9));
    for (GateId id = 0; id < nl.size(); ++id) {
        const Gate& g = nl.gate(id);
        if (g.type == CellType::Output) continue;
        EXPECT_FALSE(g.fanout.empty())
            << "dangling " << g.name << " ("
            << cell_type_name(g.type) << ")";
    }
}

TEST(Generator, SpreadShiftsLevelHistogram) {
    // High spread puts clearly more gates in the shallow half.
    auto shallow_fraction = [](const Netlist& nl) {
        std::size_t shallow = 0;
        std::size_t total = 0;
        for (GateId id = 0; id < nl.size(); ++id) {
            if (!is_combinational(nl.gate(id).type)) continue;
            ++total;
            if (nl.level(id) <= nl.depth() / 2) ++shallow;
        }
        return static_cast<double>(shallow) / static_cast<double>(total);
    };
    const double low = shallow_fraction(generate_circuit(small_config(5, 0.05)));
    const double high = shallow_fraction(generate_circuit(small_config(5, 0.95)));
    EXPECT_GT(high, low + 0.15);
}

TEST(Generator, RejectsDegenerateConfig) {
    GeneratorConfig c = small_config(1, 0.5);
    c.n_inputs = 0;
    EXPECT_THROW(generate_circuit(c), std::invalid_argument);
}

TEST(Generator, PaperProfilesComplete) {
    const auto& profiles = paper_profiles();
    ASSERT_EQ(profiles.size(), 12u);
    EXPECT_EQ(profiles.front().name, "s9234");
    EXPECT_EQ(profiles.front().gates, 1766u);
    EXPECT_EQ(profiles.front().ffs, 228u);
    EXPECT_EQ(profiles.back().name, "p141k");
    EXPECT_EQ(profiles.back().gates, 107655u);
    EXPECT_EQ(profiles.back().ffs, 10501u);
    EXPECT_NO_THROW(find_profile("s38417"));
    EXPECT_THROW(find_profile("s00000"), std::runtime_error);
}

TEST(Generator, ProfileScalingShrinksSizes) {
    const CircuitProfile& p = find_profile("s9234");
    const GeneratorConfig full = profile_config(p, 1.0);
    const GeneratorConfig half = profile_config(p, 0.5);
    EXPECT_EQ(full.n_gates, 1766u);
    EXPECT_NEAR(static_cast<double>(half.n_gates), 883.0, 1.0);
    EXPECT_EQ(half.depth, full.depth);  // depth never scales
    const Netlist nl = generate_circuit(half);
    EXPECT_EQ(nl.num_comb_gates(), half.n_gates);
}

// Property sweep: every profile generates a valid connected circuit at
// small scale.
class ProfileGeneration : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileGeneration, GeneratesValidCircuit) {
    const CircuitProfile& p = find_profile(GetParam());
    const double scale = std::min(1.0, 900.0 / static_cast<double>(p.gates));
    const Netlist nl = generate_circuit(profile_config(p, scale));
    EXPECT_TRUE(nl.finalized());
    EXPECT_GT(nl.depth(), 4u);
    EXPECT_GT(nl.observe_points().size(), 0u);
    EXPECT_GT(nl.comb_sources().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileGeneration,
    ::testing::Values("s9234", "s13207", "s15850", "s35932", "s38417",
                      "s38584", "p35k", "p45k", "p78k", "p89k", "p100k",
                      "p141k"));

}  // namespace
}  // namespace fastmon
