// CDCL SAT solver correctness (sat/solver.hpp).
//
// The solver is the foundation of the SAT test generator, so it gets
// a reference-checked battery: random 3-SAT instances compared against
// brute-force enumeration (with assumptions and model validation),
// incremental reuse across queries, permanent-UNSAT latching, and the
// conflict-budget -> Unknown contract the ATPG abort path relies on.
#include <gtest/gtest.h>

#include <random>
#include <span>
#include <vector>

#include "sat/solver.hpp"

namespace fastmon::sat {
namespace {

/// Brute-force SAT over <= ~16 variables: the oracle for randomized
/// differential checks.
bool brute_force_sat(int num_vars, const std::vector<std::vector<Lit>>& clauses,
                     const std::vector<Lit>& assumptions) {
    for (int m = 0; m < (1 << num_vars); ++m) {
        const auto value = [&](Lit l) {
            return ((m >> l.var()) & 1) != (l.sign() ? 1 : 0);
        };
        bool ok = true;
        for (const Lit a : assumptions)
            if (!value(a)) { ok = false; break; }
        for (const auto& c : clauses) {
            if (!ok) break;
            bool satisfied = false;
            for (const Lit l : c)
                if (value(l)) { satisfied = true; break; }
            if (!satisfied) ok = false;
        }
        if (ok) return true;
    }
    return false;
}

TEST(SatSolver, UnitPropagationAndAssumptions) {
    // (a|b) & (~a|b) & (~b|c): b and c are forced in every model.
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    const Var c = s.new_var();
    s.add_clause({Lit(a, false), Lit(b, false)});
    s.add_clause({Lit(a, true), Lit(b, false)});
    s.add_clause({Lit(b, true), Lit(c, false)});
    ASSERT_EQ(s.solve(), SolveStatus::Sat);
    EXPECT_TRUE(s.model_value(b));
    EXPECT_TRUE(s.model_value(c));

    // Assuming ~b is unsatisfiable, but only under the assumption: the
    // solver stays usable and the unassumed query is still SAT.
    const std::vector<Lit> assume{Lit(b, true)};
    EXPECT_EQ(s.solve(std::span<const Lit>(assume)), SolveStatus::Unsat);
    EXPECT_EQ(s.solve(), SolveStatus::Sat);
}

TEST(SatSolver, PigeonholeIsUnsat) {
    // PHP(4,3): 4 pigeons, 3 holes. Small but requires real conflict
    // analysis, and once refuted the solver must stay UNSAT.
    Solver s;
    Var p[4][3];
    for (auto& row : p)
        for (auto& v : row) v = s.new_var();
    for (const auto& row : p)
        s.add_clause({Lit(row[0], false), Lit(row[1], false), Lit(row[2], false)});
    for (int j = 0; j < 3; ++j)
        for (int i1 = 0; i1 < 4; ++i1)
            for (int i2 = i1 + 1; i2 < 4; ++i2)
                s.add_clause({Lit(p[i1][j], true), Lit(p[i2][j], true)});
    EXPECT_EQ(s.solve(), SolveStatus::Unsat);
    EXPECT_EQ(s.solve(), SolveStatus::Unsat);
}

TEST(SatSolver, RandomInstancesMatchBruteForce) {
    // 500 random instances at the SAT/UNSAT boundary, each solved with
    // random assumptions and cross-checked against enumeration.  SAT
    // answers must come with a genuinely satisfying model.
    std::mt19937 rng(7);
    for (int iter = 0; iter < 500; ++iter) {
        const int n = 4 + static_cast<int>(rng() % 9);  // 4..12 vars
        const int m = 2 + static_cast<int>(rng() % (3 * n));
        Solver s;
        for (int i = 0; i < n; ++i) (void)s.new_var();
        std::vector<std::vector<Lit>> clauses;
        bool trivially_unsat = false;
        for (int k = 0; k < m; ++k) {
            std::vector<Lit> c;
            const int len = 1 + static_cast<int>(rng() % 3);
            for (int t = 0; t < len; ++t)
                c.emplace_back(rng() % n, (rng() & 1) != 0);
            clauses.push_back(c);
            if (!s.add_clause(std::span<const Lit>(c))) trivially_unsat = true;
        }
        std::vector<Lit> assumptions;
        if (rng() % 2)
            for (int t = 0; t < static_cast<int>(rng() % 3); ++t)
                assumptions.emplace_back(rng() % n, (rng() & 1) != 0);

        const bool expect = brute_force_sat(n, clauses, assumptions);
        const SolveStatus got =
            trivially_unsat ? SolveStatus::Unsat
                            : s.solve(std::span<const Lit>(assumptions));
        ASSERT_EQ(got == SolveStatus::Sat, expect)
            << "iter " << iter << " n=" << n << " m=" << m;

        if (got == SolveStatus::Sat) {
            const auto value = [&](Lit l) { return s.model_value(l.var()) != l.sign(); };
            for (const Lit a : assumptions) EXPECT_TRUE(value(a)) << "iter " << iter;
            for (const auto& c : clauses) {
                bool satisfied = false;
                for (const Lit l : c) satisfied = satisfied || value(l);
                EXPECT_TRUE(satisfied) << "iter " << iter;
            }
        }
        // Incremental reuse: a second, unassumed query on the same
        // solver state must also terminate cleanly.
        if (!trivially_unsat) (void)s.solve();
    }
}

TEST(SatSolver, ConflictBudgetYieldsUnknownThenResolves) {
    // PHP(8,7) is far beyond a 10-conflict budget -> Unknown; lifting
    // the budget on the SAME solver must then refute it for real.
    Solver s;
    Var p[8][7];
    for (auto& row : p)
        for (auto& v : row) v = s.new_var();
    for (const auto& row : p) {
        std::vector<Lit> c;
        for (const Var v : row) c.emplace_back(v, false);
        s.add_clause(std::span<const Lit>(c));
    }
    for (int j = 0; j < 7; ++j)
        for (int i1 = 0; i1 < 8; ++i1)
            for (int i2 = i1 + 1; i2 < 8; ++i2)
                s.add_clause({Lit(p[i1][j], true), Lit(p[i2][j], true)});
    s.set_conflict_budget(10);
    EXPECT_EQ(s.solve(), SolveStatus::Unknown);
    EXPECT_GE(s.stats().conflicts, 10u);
    s.set_conflict_budget(0);  // unlimited
    EXPECT_EQ(s.solve(), SolveStatus::Unsat);
}

TEST(SatSolver, StatsAccumulate) {
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    s.add_clause({Lit(a, false), Lit(b, false)});
    ASSERT_EQ(s.solve(), SolveStatus::Sat);
    EXPECT_GE(s.stats().decisions + s.stats().propagations, 1u);
}

}  // namespace
}  // namespace fastmon::sat
