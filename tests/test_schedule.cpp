#include "schedule/freq_select.hpp"
#include "schedule/pattern_config_select.hpp"
#include "schedule/schedule.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace fastmon {
namespace {

std::vector<IntervalSet> three_fault_ranges() {
    std::vector<IntervalSet> ranges(3);
    ranges[0].add(10.0, 40.0);
    ranges[1].add(25.0, 60.0);
    ranges[2].add(50.0, 80.0);
    return ranges;
}

TEST(FreqSelect, TwoPeriodsCoverThreeOverlappingFaults) {
    FrequencySelectOptions opts;
    const FrequencySelection sel =
        select_frequencies(three_fault_ranges(), opts);
    ASSERT_TRUE(sel.feasible);
    EXPECT_TRUE(sel.proven_optimal);
    EXPECT_EQ(sel.periods.size(), 2u);
    EXPECT_EQ(sel.num_covered_faults, 3u);
}

TEST(FreqSelect, GreedyNeverBeatsExact) {
    Prng rng(23);
    for (int instance = 0; instance < 10; ++instance) {
        std::vector<IntervalSet> ranges(60);
        for (auto& r : ranges) {
            const int k = 1 + static_cast<int>(rng.next_below(2));
            for (int i = 0; i < k; ++i) {
                const Time lo = rng.uniform(0.0, 200.0);
                r.add(lo, lo + rng.uniform(2.0, 30.0));
            }
        }
        FrequencySelectOptions exact;
        FrequencySelectOptions greedy;
        greedy.method = SelectMethod::Greedy;
        const FrequencySelection se = select_frequencies(ranges, exact);
        const FrequencySelection sg = select_frequencies(ranges, greedy);
        ASSERT_TRUE(se.feasible);
        ASSERT_TRUE(sg.feasible);
        if (se.proven_optimal) {
            EXPECT_LE(se.periods.size(), sg.periods.size())
                << "instance " << instance;
        }
    }
}

TEST(FreqSelect, PartialCoverageUsesFewerPeriods) {
    Prng rng(29);
    std::vector<IntervalSet> ranges(120);
    for (auto& r : ranges) {
        const Time lo = rng.uniform(0.0, 300.0);
        r.add(lo, lo + rng.uniform(2.0, 25.0));
    }
    std::size_t prev = SIZE_MAX;
    for (double cov : {1.0, 0.95, 0.8, 0.5}) {
        FrequencySelectOptions opts;
        opts.coverage = cov;
        const FrequencySelection sel = select_frequencies(ranges, opts);
        ASSERT_TRUE(sel.feasible) << cov;
        EXPECT_LE(sel.periods.size(), prev) << cov;
        prev = sel.periods.size();
        // Covered fraction honored.
        EXPECT_GE(static_cast<double>(sel.num_covered_faults),
                  cov * static_cast<double>(ranges.size()) - 1.0);
    }
}

TEST(FreqSelect, CoveredListsAreConsistent) {
    const FrequencySelection sel =
        select_frequencies(three_fault_ranges(), FrequencySelectOptions{});
    const auto ranges = three_fault_ranges();
    ASSERT_EQ(sel.covered.size(), sel.periods.size());
    for (std::size_t j = 0; j < sel.periods.size(); ++j) {
        for (std::uint32_t f : sel.covered[j]) {
            EXPECT_TRUE(ranges[f].contains(sel.periods[j]));
        }
    }
}

TEST(FreqSelect, EmptyRangesAreExcludedFromBase) {
    std::vector<IntervalSet> ranges(4);
    ranges[0].add(10.0, 20.0);
    // ranges[1..3] empty: uncoverable, must not block full coverage.
    const FrequencySelection sel =
        select_frequencies(ranges, FrequencySelectOptions{});
    EXPECT_TRUE(sel.feasible);
    EXPECT_EQ(sel.periods.size(), 1u);
    EXPECT_EQ(sel.num_covered_faults, 1u);
}

DetectionEntry entry(std::uint32_t fault, std::uint32_t pattern,
                     std::uint16_t config, std::uint16_t period) {
    return DetectionEntry{fault, pattern, config, period};
}

TEST(PatternConfig, MinimalSelection) {
    // Two periods; three faults.  Pattern 0 / config 1 covers faults
    // 0 and 1 at period 0; fault 2 needs pattern 2 / config 0 at
    // period 1.
    const std::vector<DetectionEntry> entries{
        entry(0, 0, 1, 0), entry(1, 0, 1, 0), entry(1, 1, 0, 0),
        entry(2, 2, 0, 1),
    };
    const std::vector<Time> periods{100.0, 200.0};
    const std::vector<std::uint32_t> targets{0, 1, 2};
    const PatternConfigResult r = select_pattern_configs(
        entries, periods, targets, PatternConfigOptions{});
    EXPECT_TRUE(r.uncovered_faults.empty());
    EXPECT_EQ(r.schedule.size(), 2u);
    EXPECT_EQ(r.schedule.num_frequencies(), 2u);
}

TEST(PatternConfig, ReportsUncoverableFaults) {
    const std::vector<DetectionEntry> entries{entry(0, 0, 0, 0)};
    const std::vector<Time> periods{100.0};
    const std::vector<std::uint32_t> targets{0, 7};
    const PatternConfigResult r = select_pattern_configs(
        entries, periods, targets, PatternConfigOptions{});
    ASSERT_EQ(r.uncovered_faults.size(), 1u);
    EXPECT_EQ(r.uncovered_faults[0], 7u);
}

TEST(PatternConfig, FaultDroppingAssignsEachFaultOnce) {
    // Fault 0 detectable at both periods; it must be scheduled at
    // exactly one (the busier one), not both.
    const std::vector<DetectionEntry> entries{
        entry(0, 0, 0, 0), entry(0, 0, 0, 1),
        entry(1, 1, 0, 0), entry(2, 2, 0, 0),
    };
    const std::vector<Time> periods{100.0, 200.0};
    const std::vector<std::uint32_t> targets{0, 1, 2};
    const PatternConfigResult r = select_pattern_configs(
        entries, periods, targets, PatternConfigOptions{});
    EXPECT_TRUE(r.uncovered_faults.empty());
    // Everything fits at period 0: no entries at period 1 needed.
    for (const ScheduleEntry& e : r.schedule.entries) {
        EXPECT_EQ(e.period_index, 0u);
    }
}

TEST(PatternConfig, SharedConfigReducesCombinations) {
    // Faults 0..3 all covered by pattern 0 under config 2 at period 0;
    // a per-fault selection would pick 4 combos, the cover picks 1.
    std::vector<DetectionEntry> entries;
    for (std::uint32_t f = 0; f < 4; ++f) {
        entries.push_back(entry(f, 0, 2, 0));
        entries.push_back(entry(f, f + 1, 1, 0));  // decoys
    }
    const std::vector<Time> periods{100.0};
    const std::vector<std::uint32_t> targets{0, 1, 2, 3};
    const PatternConfigResult r = select_pattern_configs(
        entries, periods, targets, PatternConfigOptions{});
    EXPECT_EQ(r.schedule.size(), 1u);
    EXPECT_EQ(r.schedule.entries[0].pattern, 0u);
    EXPECT_EQ(r.schedule.entries[0].config, 2u);
}

TEST(TestTimeModel, RelockDominates) {
    const TestTimeModel model;
    TestSchedule few_freqs;
    few_freqs.periods = {1.0, 2.0};
    few_freqs.entries.resize(100);
    TestSchedule many_freqs;
    many_freqs.periods = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
    many_freqs.entries.resize(20);
    EXPECT_LT(model.cycles(few_freqs), model.cycles(many_freqs));
}

TEST(TestTimeModel, ReductionPercent) {
    EXPECT_NEAR(schedule_reduction_percent(250, 1000), 75.0, 1e-9);
    EXPECT_NEAR(schedule_reduction_percent(1000, 1000), 0.0, 1e-9);
    EXPECT_NEAR(schedule_reduction_percent(0, 0), 0.0, 1e-9);
}

}  // namespace
}  // namespace fastmon
