#include "timing/sdf.hpp"

#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"
#include "timing/sta_engine.hpp"

namespace fastmon {
namespace {

TEST(Sdf, RoundTripPreservesArcs) {
    const Netlist nl = make_s27();
    const DelayAnnotation ann = DelayAnnotation::with_variation(nl, 0.2, 7);
    const std::string text = write_sdf_string(nl, ann);
    const DelayAnnotation back = read_sdf_string(text, nl);
    for (GateId id = 0; id < nl.size(); ++id) {
        const Gate& g = nl.gate(id);
        if (!is_combinational(g.type)) continue;
        for (std::uint32_t p = 0; p < g.fanin.size(); ++p) {
            EXPECT_NEAR(back.arc(id, p).rise, ann.arc(id, p).rise, 1e-3);
            EXPECT_NEAR(back.arc(id, p).fall, ann.arc(id, p).fall, 1e-3);
        }
    }
}

TEST(Sdf, RoundTripPreservesSta) {
    const Netlist nl = generate_circuit(
        GeneratorConfig{"sdf_gen", 300, 30, 8, 8, 12, 0.5, 11});
    const DelayAnnotation ann = DelayAnnotation::with_variation(nl, 0.15, 3);
    const DelayAnnotation back = read_sdf_string(write_sdf_string(nl, ann), nl);
    const StaResult a = StaEngine(nl, ann).analyze();
    const StaResult b = StaEngine(nl, back).analyze();
    EXPECT_NEAR(a.critical_path_length, b.critical_path_length,
                1e-3 * a.critical_path_length);
}

TEST(Sdf, ContainsHeaderAndInstances) {
    const Netlist nl = make_s27();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const std::string text = write_sdf_string(nl, ann);
    EXPECT_NE(text.find("(DELAYFILE"), std::string::npos);
    EXPECT_NE(text.find("(SDFVERSION \"3.0\")"), std::string::npos);
    EXPECT_NE(text.find("(DESIGN \"s27\")"), std::string::npos);
    EXPECT_NE(text.find("(INSTANCE G11)"), std::string::npos);
    EXPECT_NE(text.find("IOPATH in0 out"), std::string::npos);
}

TEST(Sdf, RejectsUnknownInstance) {
    const Netlist nl = make_s27();
    const std::string bad =
        "(DELAYFILE (CELL (INSTANCE nonexistent) "
        "(DELAY (ABSOLUTE (IOPATH in0 out ( 1.0 ) ( 2.0 ))))))";
    EXPECT_THROW(read_sdf_string(bad, nl), std::runtime_error);
}

TEST(Sdf, RejectsPinOutOfRange) {
    const Netlist nl = make_s27();
    const std::string bad =
        "(DELAYFILE (CELL (INSTANCE G14) "
        "(DELAY (ABSOLUTE (IOPATH in5 out ( 1.0 ) ( 2.0 ))))))";
    EXPECT_THROW(read_sdf_string(bad, nl), std::runtime_error);
}

TEST(Sdf, UnmentionedArcsStayNominal) {
    const Netlist nl = make_s27();
    const DelayAnnotation nominal = DelayAnnotation::nominal(nl);
    const GateId g14 = nl.find("G14");
    const std::string partial =
        "(DELAYFILE (CELL (INSTANCE G14) "
        "(DELAY (ABSOLUTE (IOPATH in0 out ( 99.0 ) ( 98.0 ))))))";
    const DelayAnnotation ann = read_sdf_string(partial, nl);
    EXPECT_DOUBLE_EQ(ann.arc(g14, 0).rise, 99.0);
    const GateId g8 = nl.find("G8");
    EXPECT_DOUBLE_EQ(ann.arc(g8, 0).rise, nominal.arc(g8, 0).rise);
}

}  // namespace
}  // namespace fastmon
