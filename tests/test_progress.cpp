// Tests of the live-progress heartbeat layer: monotone snapshot
// counters, never-torn sidecar reads under a fast sampler, honest
// terminal states (including cancellation), and the campaign
// integration — the final sidecar must agree with the exported report
// while leaving the deterministic blocks untouched.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "netlist/iscas_data.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"
#include "util/progress.hpp"

namespace fastmon {
namespace {

std::optional<Json> read_json_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string err;
    return Json::parse(buf.str(), &err);
}

double num(const Json& j, const char* key) {
    const Json* v = j.find(key);
    return (v != nullptr && v->is_number()) ? v->as_number() : -1.0;
}

std::string str(const Json& j, const char* key) {
    const Json* v = j.find(key);
    return (v != nullptr && v->is_string()) ? v->as_string() : "";
}

struct FileGuard {
    std::string path;
    ~FileGuard() { std::remove(path.c_str()); }
};

// ------------------------------------------------------------ snapshots

TEST(ProgressReporter, SnapshotCountsAllSlotContributions) {
    ProgressConfig config;
    config.label = "unit";
    config.devices_total = 100;
    config.grid_points = 10;
    ProgressReporter reporter(config);

    auto& slot = reporter.slot_for_this_thread();
    slot.devices.fetch_add(7, std::memory_order_relaxed);
    slot.lane_years.fetch_add(70, std::memory_order_relaxed);
    slot.batches.fetch_add(1, std::memory_order_relaxed);
    reporter.add_resumed(3);

    const Json snap = reporter.snapshot("running");
    EXPECT_EQ(str(snap, "schema"), "fastmon-heartbeat-v1");
    EXPECT_EQ(str(snap, "label"), "unit");
    EXPECT_EQ(num(snap, "devices_done"), 10.0);   // 7 rolled + 3 resumed
    EXPECT_EQ(num(snap, "devices_rolled"), 7.0);
    EXPECT_EQ(num(snap, "devices_resumed"), 3.0);
    EXPECT_EQ(num(snap, "devices_total"), 100.0);
    EXPECT_EQ(num(snap, "lane_years_done"), 70.0);
    EXPECT_EQ(num(snap, "lane_years_budget"), 1000.0);
    ASSERT_NE(snap.find("workers"), nullptr);
    EXPECT_EQ(snap.find("workers")->as_array().size(), 1u);
    EXPECT_EQ(reporter.devices_done(), 10u);
}

TEST(ProgressReporter, SequencesAndCountersAreMonotone) {
    ProgressConfig config;
    config.devices_total = 1000;
    ProgressReporter reporter(config);
    auto& slot = reporter.slot_for_this_thread();

    double last_seq = -1.0;
    double last_done = -1.0;
    for (int i = 0; i < 50; ++i) {
        slot.devices.fetch_add(3, std::memory_order_relaxed);
        const Json snap = reporter.snapshot("running");
        EXPECT_GT(num(snap, "sequence"), last_seq);
        EXPECT_GE(num(snap, "devices_done"), last_done);
        last_seq = num(snap, "sequence");
        last_done = num(snap, "devices_done");
    }
    EXPECT_EQ(last_done, 150.0);
}

TEST(ProgressReporter, EachThreadGetsItsOwnSlot) {
    ProgressConfig config;
    config.devices_total = 400;
    ProgressReporter reporter(config);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&reporter] {
            auto& slot = reporter.slot_for_this_thread();
            for (int i = 0; i < 100; ++i) {
                slot.devices.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto& t : threads) t.join();
    const Json snap = reporter.snapshot("running");
    EXPECT_EQ(num(snap, "devices_done"), 400.0);
    EXPECT_EQ(snap.find("workers")->as_array().size(), 4u);
}

// -------------------------------------------------------- sidecar file

TEST(ProgressReporter, SidecarIsNeverTorn) {
    // A sampler on a 1 ms cadence races a hot writer loop; every read
    // of the sidecar must parse as a complete heartbeat because the
    // file is replaced by rename, never written in place.
    const FileGuard guard{"test_progress_torn.heartbeat.json"};
    ProgressConfig config;
    config.path = guard.path;
    config.interval_seconds = 0.001;
    config.devices_total = 1u << 20;
    ProgressReporter reporter(config);
    auto& slot = reporter.slot_for_this_thread();
    reporter.start();

    std::atomic<bool> done{false};
    std::thread writer([&] {
        while (!done.load(std::memory_order_relaxed)) {
            slot.devices.fetch_add(1, std::memory_order_relaxed);
            slot.lane_years.fetch_add(61, std::memory_order_relaxed);
        }
    });

    int parsed = 0;
    double last_done = -1.0;
    for (int i = 0; i < 200; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        const std::optional<Json> hb = read_json_file(guard.path);
        if (!hb) continue;  // first snapshot may not exist yet
        ASSERT_TRUE(hb->is_object()) << "torn sidecar read";
        EXPECT_EQ(str(*hb, "schema"), "fastmon-heartbeat-v1");
        // Snapshots observed in file order never go backwards.
        EXPECT_GE(num(*hb, "devices_done"), last_done);
        last_done = num(*hb, "devices_done");
        ++parsed;
    }
    done.store(true, std::memory_order_relaxed);
    writer.join();
    reporter.stop("finished");
    EXPECT_GT(parsed, 0);

    const std::optional<Json> final_hb = read_json_file(guard.path);
    ASSERT_TRUE(final_hb.has_value());
    EXPECT_EQ(str(*final_hb, "state"), "finished");
}

TEST(ProgressReporter, StopIsIdempotentAndFirstStateWins) {
    const FileGuard guard{"test_progress_stop.heartbeat.json"};
    ProgressConfig config;
    config.path = guard.path;
    ProgressReporter reporter(config);
    reporter.start();
    reporter.stop("cancelled");
    reporter.stop("finished");  // ignored: the first stop wins
    const std::optional<Json> hb = read_json_file(guard.path);
    ASSERT_TRUE(hb.has_value());
    EXPECT_EQ(str(*hb, "state"), "cancelled");
}

TEST(ProgressReporter, DestructorLeavesAnHonestFinalSnapshot) {
    const FileGuard guard{"test_progress_dtor.heartbeat.json"};
    {
        ProgressConfig config;
        config.path = guard.path;
        ProgressReporter reporter(config);
        reporter.start();
        reporter.slot_for_this_thread().devices.fetch_add(
            5, std::memory_order_relaxed);
    }
    const std::optional<Json> hb = read_json_file(guard.path);
    ASSERT_TRUE(hb.has_value());
    EXPECT_EQ(str(*hb, "state"), "finished");
    EXPECT_EQ(num(*hb, "devices_done"), 5.0);
}

// ------------------------------------------------- campaign integration

TEST(ProgressReporter, CampaignHeartbeatAgreesWithTheReport) {
    const FileGuard guard{"test_progress_campaign.heartbeat.json"};
    const Netlist netlist = make_mini_alu();

    CampaignConfig config;
    config.population = 60;
    config.num_threads = 2;

    // Baseline without telemetry, then the identical campaign with the
    // sidecar on a deliberately tiny interval.
    const CampaignResult baseline = run_campaign(netlist, config);
    config.heartbeat_path = guard.path;
    config.heartbeat_seconds = 0.001;
    const CampaignResult observed = run_campaign(netlist, config);

    // Telemetry is pure observation: deterministic blocks identical
    // (the heartbeat knobs never enter the campaign block).
    const Json a = baseline.to_json(config);
    for (const char* block : {"campaign", "aggregate"}) {
        const Json b = observed.to_json(config);
        ASSERT_NE(a.find(block), nullptr);
        ASSERT_NE(b.find(block), nullptr);
        EXPECT_TRUE(*a.find(block) == *b.find(block)) << block;
    }

    // Final sidecar agrees with the exported report.
    const std::optional<Json> hb = read_json_file(guard.path);
    ASSERT_TRUE(hb.has_value());
    EXPECT_EQ(str(*hb, "state"), "finished");
    EXPECT_EQ(num(*hb, "devices_done"),
              static_cast<double>(observed.devices_completed));
    EXPECT_EQ(num(*hb, "devices_total"),
              static_cast<double>(config.population));

    // The sketch telemetry rides in the run block with count coverage
    // of the whole population.
    const Json report = observed.to_json(config);
    const Json* run = report.find("run");
    ASSERT_NE(run, nullptr);
    const Json* sketches = run->find("telemetry");
    ASSERT_NE(sketches, nullptr);
    const Json* latency = sketches->find("roll_latency_us");
    ASSERT_NE(latency, nullptr);
    const Json* lat_summary = latency->find("summary");
    ASSERT_NE(lat_summary, nullptr);
    EXPECT_EQ(lat_summary->find("count")->as_number(),
              static_cast<double>(config.population));
}

TEST(ProgressReporter, CancelledCampaignReportsAnHonestState) {
    const FileGuard guard{"test_progress_cancel.heartbeat.json"};
    const Netlist netlist = make_mini_alu();

    CampaignConfig config;
    config.population = 50;
    config.num_threads = 1;
    config.heartbeat_path = guard.path;
    config.heartbeat_seconds = 0.001;

    CancelToken::global().cancel(CancelCause::Test);
    const CampaignResult result = run_campaign(netlist, config);
    CancelToken::global().reset();

    EXPECT_TRUE(result.status.cancelled);
    const std::optional<Json> hb = read_json_file(guard.path);
    ASSERT_TRUE(hb.has_value());
    EXPECT_EQ(str(*hb, "state"), "cancelled");
    EXPECT_EQ(num(*hb, "devices_done"),
              static_cast<double>(result.devices_completed));
}

}  // namespace
}  // namespace fastmon
