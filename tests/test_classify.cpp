#include "fault/classify.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/generator.hpp"
#include "monitor/placement.hpp"
#include "timing/sta_engine.hpp"

namespace fastmon {
namespace {

TEST(FaultUniverse, TwoFaultsPerPin) {
    NetlistBuilder b("u");
    b.input("a").input("c");
    b.nand2("g", "a", "c");
    b.output("g");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const FaultUniverse u = FaultUniverse::generate(nl, ann);
    // One NAND2: pins = out + 2 inputs, 2 directions each.
    EXPECT_EQ(u.size(), 6u);
    EXPECT_EQ(u.fault_name(nl, 0), "g/out:STR");
}

TEST(FaultUniverse, DeltaIsSixSigma) {
    NetlistBuilder b("d");
    b.input("a");
    b.inv("g", "a");
    b.output("g");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const FaultUniverse u = FaultUniverse::generate(nl, ann, 1.2);
    for (const DelayFault& f : u.faults()) {
        EXPECT_NEAR(f.delta, 1.2 * ann.nominal_gate_delay(f.site.gate),
                    1e-9);
    }
}

TEST(FaultUniverse, SampleIsDeterministicSubset) {
    const Netlist nl = generate_circuit(
        GeneratorConfig{"fu", 300, 30, 8, 8, 10, 0.5, 2});
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const FaultUniverse u = FaultUniverse::generate(nl, ann);
    const auto s1 = u.sample(100, 7);
    const auto s2 = u.sample(100, 7);
    const auto s3 = u.sample(100, 8);
    EXPECT_EQ(s1.size(), 100u);
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1, s3);
    for (FaultId id : s1) EXPECT_LT(id, u.size());
    // Sorted and unique.
    for (std::size_t i = 1; i < s1.size(); ++i) EXPECT_LT(s1[i - 1], s1[i]);
    // Larger than universe: identity.
    EXPECT_EQ(u.sample(1u << 20, 1).size(), u.size());
}

TEST(Classify, CriticalPathFaultsAreAtSpeedDetectable) {
    // Long chain: the deep gates have almost no slack, so a 1.2x gate
    // delay fault on them is at-speed detectable.
    NetlistBuilder b("chain");
    b.input("a");
    std::string prev = "a";
    for (int i = 0; i < 12; ++i) {
        const std::string name = "n" + std::to_string(i);
        b.inv(name, prev);
        prev = name;
    }
    b.output(prev);
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const FaultUniverse u = FaultUniverse::generate(nl, ann);
    StructuralClassifyConfig cfg;
    cfg.fmax_factor = 3.0;
    const StructuralClassification c =
        classify_structural(nl, ann, sta, u, cfg);
    // A single path: every fault sits on the critical path with 5 %
    // slack < delta = 120 % of a gate delay.
    EXPECT_EQ(c.num_at_speed, u.size());
    EXPECT_EQ(c.num_candidates, 0u);
}

TEST(Classify, ShortPathFaultsAreRedundantWithoutMonitors) {
    // A long chain sets the clock; a separate single-buffer path is far
    // too fast for its fault to reach the FAST window.
    NetlistBuilder b("mix");
    b.input("a");
    b.input("s");
    std::string prev = "a";
    for (int i = 0; i < 20; ++i) {
        const std::string name = "n" + std::to_string(i);
        b.inv(name, prev);
        prev = name;
    }
    b.output(prev);
    b.buf("fastpath", "s");
    b.dff("q", "fastpath");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const FaultUniverse u = FaultUniverse::generate(nl, ann);
    StructuralClassifyConfig cfg;
    cfg.fmax_factor = 3.0;
    const StructuralClassification c =
        classify_structural(nl, ann, sta, u, cfg);
    EXPECT_GT(c.num_redundant, 0u);

    // With a monitor (max delay clk/3) on the fast path's FF, the same
    // faults become candidates.
    StructuralClassifyConfig cfg_mon = cfg;
    cfg_mon.max_monitor_delay = sta.clock_period / 3.0;
    cfg_mon.monitored_observe.assign(nl.observe_points().size(), true);
    const StructuralClassification cm =
        classify_structural(nl, ann, sta, u, cfg_mon);
    EXPECT_LT(cm.num_redundant, c.num_redundant);
    EXPECT_GT(cm.num_candidates, c.num_candidates);
}

TEST(Classify, PathThroughSiteMatchesStaForOutputFaults) {
    const Netlist nl = generate_circuit(
        GeneratorConfig{"cls", 300, 30, 8, 8, 10, 0.5, 6});
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    for (GateId id = 0; id < nl.size(); ++id) {
        if (!is_combinational(nl.gate(id).type)) continue;
        const Time p = path_through_site(nl, ann, sta,
                                         FaultSite{id, FaultSite::kOutputPin});
        EXPECT_NEAR(p, sta.path_through[id], 1e-9);
        // Input-pin paths never exceed the gate's own path-through.
        for (std::uint32_t pin = 0;
             pin < static_cast<std::uint32_t>(nl.gate(id).fanin.size());
             ++pin) {
            const Time pp =
                path_through_site(nl, ann, sta, FaultSite{id, pin});
            EXPECT_LE(pp, p + 1e-9);
        }
    }
}

TEST(Classify, CandidateListMatchesCounts) {
    const Netlist nl = generate_circuit(
        GeneratorConfig{"cls2", 400, 40, 10, 10, 14, 0.7, 8});
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const FaultUniverse u = FaultUniverse::generate(nl, ann);
    StructuralClassifyConfig cfg;
    cfg.fmax_factor = 3.0;
    const StructuralClassification c =
        classify_structural(nl, ann, sta, u, cfg);
    EXPECT_EQ(c.klass.size(), u.size());
    EXPECT_EQ(c.num_at_speed + c.num_redundant + c.num_candidates, u.size());
    EXPECT_EQ(c.candidates().size(), c.num_candidates);
    // All three classes should be populated on a spread circuit.
    EXPECT_GT(c.num_at_speed, 0u);
    EXPECT_GT(c.num_candidates, 0u);
}

}  // namespace
}  // namespace fastmon
