#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas_data.hpp"

namespace fastmon {
namespace {

TEST(BenchIo, ParsesMinimalCircuit) {
    const std::string text = R"(
# comment line
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
)";
    const Netlist nl = read_bench_string(text, "mini");
    EXPECT_EQ(nl.primary_inputs().size(), 2u);
    EXPECT_EQ(nl.primary_outputs().size(), 1u);
    EXPECT_EQ(nl.num_comb_gates(), 1u);
    EXPECT_EQ(nl.gate(nl.find("y")).type, CellType::Nand);
}

TEST(BenchIo, HandlesForwardReferencesThroughDff) {
    // DFF output used before the D signal is defined (as in s27).
    const std::string text = R"(
INPUT(a)
OUTPUT(q)
q = DFF(n)
n = NOT(q2)
q2 = DFF(a)
)";
    EXPECT_NO_THROW(read_bench_string(text, "fwd"));
}

TEST(BenchIo, RoundTripPreservesStructure) {
    const Netlist original = make_s27();
    const std::string text = write_bench_string(original);
    const Netlist reparsed = read_bench_string(text, "s27");
    EXPECT_EQ(reparsed.primary_inputs().size(),
              original.primary_inputs().size());
    EXPECT_EQ(reparsed.primary_outputs().size(),
              original.primary_outputs().size());
    EXPECT_EQ(reparsed.flip_flops().size(), original.flip_flops().size());
    EXPECT_EQ(reparsed.num_comb_gates(), original.num_comb_gates());
    // Same gate types per name.
    for (const Gate& g : original.gates()) {
        if (g.type == CellType::Output) continue;
        const GateId id = reparsed.find(g.name);
        ASSERT_NE(id, kNoGate) << g.name;
        EXPECT_EQ(reparsed.gate(id).type, g.type) << g.name;
        EXPECT_EQ(reparsed.gate(id).fanin.size(), g.fanin.size());
    }
}

TEST(BenchIo, CaseInsensitiveGateNames) {
    const std::string text = "INPUT(a)\nOUTPUT(y)\ny = nand(a, a)\n";
    const Netlist nl = read_bench_string(text, "lc");
    EXPECT_EQ(nl.gate(nl.find("y")).type, CellType::Nand);
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
    try {
        read_bench_string("INPUT(a)\ny = FROB(a)\n", "bad");
        FAIL() << "expected parse error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(BenchIo, RejectsUndefinedSignal) {
    EXPECT_THROW(read_bench_string("INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n",
                                   "bad"),
                 std::runtime_error);
}

TEST(BenchIo, RejectsRedefinition) {
    EXPECT_THROW(
        read_bench_string("INPUT(a)\ny = NOT(a)\ny = BUFF(a)\n", "bad"),
        std::runtime_error);
}

TEST(BenchIo, RejectsOutputOfUnknownSignal) {
    EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(zz)\n", "bad"),
                 std::runtime_error);
}

TEST(BenchIo, MultiInputGates) {
    const std::string text =
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n"
        "y = NOR(a, b, c, d)\n";
    const Netlist nl = read_bench_string(text, "wide");
    EXPECT_EQ(nl.gate(nl.find("y")).fanin.size(), 4u);
}

}  // namespace
}  // namespace fastmon
