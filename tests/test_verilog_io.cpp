#include "netlist/verilog_io.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas_data.hpp"
#include "netlist/structures.hpp"
#include "sim/logic_sim.hpp"

namespace fastmon {
namespace {

TEST(VerilogIo, ParsesMinimalModule) {
    const std::string text = R"(
// a trivial module
module tiny (a, b, y);
  input a, b;
  output y;
  nand g0 (y, a, b);
endmodule
)";
    const Netlist nl = read_verilog_string(text);
    EXPECT_EQ(nl.name(), "tiny");
    EXPECT_EQ(nl.primary_inputs().size(), 2u);
    EXPECT_EQ(nl.primary_outputs().size(), 1u);
    EXPECT_EQ(nl.gate(nl.find("y")).type, CellType::Nand);
}

TEST(VerilogIo, HandlesBusesWiresAndAssigns) {
    const std::string text = R"(
module bus_demo (a, y);
  input [1:0] a;
  output y;
  wire w;
  /* block
     comment */
  and g0 (w, a[0], a[1]);
  assign y = ~w;
endmodule
)";
    const Netlist nl = read_verilog_string(text);
    EXPECT_NE(nl.find("a[0]"), kNoGate);
    EXPECT_NE(nl.find("a[1]"), kNoGate);
    EXPECT_EQ(nl.gate(nl.find("y")).type, CellType::Inv);
    EXPECT_EQ(nl.gate(nl.find("w")).type, CellType::And);
}

TEST(VerilogIo, ThreePortDffDropsClock) {
    const std::string text = R"(
module seq (clk, d, q);
  input clk, d;
  output q;
  dff r0 (clk, q, d);
endmodule
)";
    const Netlist nl = read_verilog_string(text);
    ASSERT_EQ(nl.flip_flops().size(), 1u);
    const Gate& ff = nl.gate(nl.flip_flops()[0]);
    EXPECT_EQ(ff.name, "q");
    EXPECT_EQ(nl.gate(ff.fanin[0]).name, "d");
}

TEST(VerilogIo, SequentialForwardReferences) {
    const std::string text = R"(
module fb (a, q);
  input a;
  output q;
  dff r0 (q, n);
  nand g0 (n, a, q);
endmodule
)";
    EXPECT_NO_THROW(read_verilog_string(text));
}

TEST(VerilogIo, ErrorsCarryLineNumbers) {
    try {
        read_verilog_string("module m (a);\n  input a;\n  frobnicate g (a);\nendmodule\n");
        FAIL() << "expected parse error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(VerilogIo, RejectsDoubleDriver) {
    const std::string text =
        "module m (a, y);\n  input a;\n  output y;\n"
        "  buf g0 (y, a);\n  not g1 (y, a);\nendmodule\n";
    EXPECT_THROW(read_verilog_string(text), std::runtime_error);
}

TEST(VerilogIo, RejectsUndrivenSignal) {
    const std::string text =
        "module m (a, y);\n  input a;\n  output y;\n"
        "  buf g0 (y, ghost);\nendmodule\n";
    EXPECT_THROW(read_verilog_string(text), std::runtime_error);
}

TEST(VerilogIo, RoundTripPreservesS27) {
    const Netlist original = make_s27();
    const std::string text = write_verilog_string(original);
    const Netlist back = read_verilog_string(text);
    EXPECT_EQ(back.primary_inputs().size(), original.primary_inputs().size());
    EXPECT_EQ(back.primary_outputs().size(),
              original.primary_outputs().size());
    EXPECT_EQ(back.flip_flops().size(), original.flip_flops().size());
    EXPECT_EQ(back.num_comb_gates(), original.num_comb_gates());
    for (const Gate& g : original.gates()) {
        if (g.type == CellType::Output) continue;
        const GateId id = back.find(g.name);
        ASSERT_NE(id, kNoGate) << g.name;
        EXPECT_EQ(back.gate(id).type, g.type);
    }
}

TEST(VerilogIo, RoundTripPreservesBehaviour) {
    // Functional equivalence on the mini ALU over random vectors.
    const Netlist original = make_mini_alu();
    const Netlist back = read_verilog_string(write_verilog_string(original));
    const LogicSim sim_a(original);
    const LogicSim sim_b(back);
    const std::size_t n = original.comb_sources().size();
    ASSERT_EQ(back.comb_sources().size(), n);
    for (std::uint32_t m = 1; m < 2048; m = m * 3 + 1) {
        std::vector<Bit> src(n);
        for (std::size_t s = 0; s < n; ++s) src[s] = (m >> (s % 11)) & 1;
        const auto va = sim_a.eval(src);
        const auto vb = sim_b.eval(src);
        // Compare per observe point by driving-signal name.
        const auto ops_a = original.observe_points();
        const auto ops_b = back.observe_points();
        ASSERT_EQ(ops_a.size(), ops_b.size());
        for (std::size_t o = 0; o < ops_a.size(); ++o) {
            const std::string& name = original.gate(ops_a[o].signal).name;
            const GateId sig_b = back.find(name);
            ASSERT_NE(sig_b, kNoGate);
            EXPECT_EQ(va[ops_a[o].signal], vb[sig_b]) << name;
        }
    }
}

TEST(VerilogIo, EscapedIdentifiers) {
    // Writer escapes names that are not plain identifiers (here: from a
    // scalarized bus) and the reader accepts them back.
    const std::string text = R"(
module esc (a, y);
  input [1:0] a;
  output y;
  xor g0 (y, a[0], a[1]);
endmodule
)";
    const Netlist nl = read_verilog_string(text);
    const Netlist back = read_verilog_string(write_verilog_string(nl));
    EXPECT_NE(back.find("a[0]"), kNoGate);
    EXPECT_EQ(back.gate(back.find("y")).type, CellType::Xor);
}

TEST(VerilogIo, GeneratedStructuresRoundTrip) {
    for (const Netlist& nl :
         {make_counter(5), make_lfsr(8, maximal_lfsr_taps(8))}) {
        const Netlist back = read_verilog_string(write_verilog_string(nl));
        EXPECT_EQ(back.num_comb_gates(), nl.num_comb_gates());
        EXPECT_EQ(back.flip_flops().size(), nl.flip_flops().size());
    }
}

}  // namespace
}  // namespace fastmon
