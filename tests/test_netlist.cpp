#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/iscas_data.hpp"

namespace fastmon {
namespace {

Netlist small_seq() {
    NetlistBuilder b("small_seq");
    b.input("a").input("b");
    b.dff_declare("q");
    b.nand2("n1", "a", "q");
    b.or2("n2", "n1", "b");
    b.dff_connect("q", "n2");
    b.output("n2");
    return b.build();
}

TEST(Netlist, BasicCounts) {
    const Netlist nl = small_seq();
    EXPECT_EQ(nl.primary_inputs().size(), 2u);
    EXPECT_EQ(nl.primary_outputs().size(), 1u);
    EXPECT_EQ(nl.flip_flops().size(), 1u);
    EXPECT_EQ(nl.num_comb_gates(), 2u);
    EXPECT_EQ(nl.size(), 6u);  // 2 PI + 1 FF + 2 gates + 1 pad
}

TEST(Netlist, FindByName) {
    const Netlist nl = small_seq();
    EXPECT_NE(nl.find("n1"), kNoGate);
    EXPECT_NE(nl.find("q"), kNoGate);
    EXPECT_EQ(nl.find("nope"), kNoGate);
    EXPECT_EQ(nl.gate(nl.find("n1")).type, CellType::Nand);
}

TEST(Netlist, CombSourcesAreInputsThenFfs) {
    const Netlist nl = small_seq();
    const auto sources = nl.comb_sources();
    ASSERT_EQ(sources.size(), 3u);
    EXPECT_EQ(nl.gate(sources[0]).type, CellType::Input);
    EXPECT_EQ(nl.gate(sources[1]).type, CellType::Input);
    EXPECT_EQ(nl.gate(sources[2]).type, CellType::Dff);
    for (std::uint32_t i = 0; i < sources.size(); ++i) {
        EXPECT_EQ(nl.source_index(sources[i]), i);
    }
    EXPECT_EQ(nl.source_index(nl.find("n1")),
              std::numeric_limits<std::uint32_t>::max());
}

TEST(Netlist, ObservePointsArePosThenPpos) {
    const Netlist nl = small_seq();
    const auto ops = nl.observe_points();
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_FALSE(ops[0].is_pseudo);
    EXPECT_EQ(ops[0].signal, nl.find("n2"));
    EXPECT_TRUE(ops[1].is_pseudo);
    EXPECT_EQ(ops[1].signal, nl.find("n2"));
}

TEST(Netlist, TopoOrderRespectsDependencies) {
    const Netlist nl = make_s27();
    const auto order = nl.topo_order();
    EXPECT_EQ(order.size(), nl.size());
    for (GateId id = 0; id < nl.size(); ++id) {
        const Gate& g = nl.gate(id);
        if (g.type == CellType::Input || g.type == CellType::Dff) continue;
        for (GateId f : g.fanin) {
            EXPECT_LT(nl.topo_rank(f), nl.topo_rank(id))
                << nl.gate(f).name << " must precede " << g.name;
        }
    }
}

TEST(Netlist, LevelsIncreaseAlongEdges) {
    const Netlist nl = make_s27();
    for (GateId id = 0; id < nl.size(); ++id) {
        const Gate& g = nl.gate(id);
        if (g.type == CellType::Input || g.type == CellType::Dff) {
            EXPECT_EQ(nl.level(id), 0u);
            continue;
        }
        for (GateId f : g.fanin) {
            EXPECT_LT(nl.level(f), nl.level(id));
        }
    }
    EXPECT_GT(nl.depth(), 0u);
}

TEST(Netlist, FanoutConeContainsSelfAndStopsAtRegisters) {
    const Netlist nl = make_s27();
    const GateId g11 = nl.find("G11");
    ASSERT_NE(g11, kNoGate);
    const auto cone = nl.fanout_cone(g11);
    EXPECT_EQ(cone.front(), g11);
    // The cone includes the DFF sink node G6 = DFF(G11) but not G6's
    // own fanouts (register boundary).
    const GateId g6 = nl.find("G6");
    EXPECT_NE(std::find(cone.begin(), cone.end(), g6), cone.end());
    const GateId g8 = nl.find("G8");  // G8 = AND(G14, G6): behind the FF
    EXPECT_EQ(std::find(cone.begin(), cone.end(), g8), cone.end());
}

TEST(Netlist, RejectsCombinationalCycle) {
    Netlist nl("cycle");
    const GateId a = nl.add_gate(CellType::Input, "a", {});
    // g1 and g2 feed each other.
    const GateId g1 = nl.add_gate(CellType::Nand, "g1", {a, a});
    const GateId g2 = nl.add_gate(CellType::Nand, "g2", {g1, a});
    nl.add_gate(CellType::Output, "o$po", {g2});
    // Rewire g1 to depend on g2 (append beyond is blocked; rebuild).
    Netlist bad("cycle2");
    const GateId ba = bad.add_gate(CellType::Input, "a", {});
    const GateId bg1 = bad.add_gate(CellType::Nand, "g1", {});
    const GateId bg2 = bad.add_gate(CellType::Nand, "g2", {});
    bad.append_fanin(bg1, bg2);
    bad.append_fanin(bg1, ba);
    bad.append_fanin(bg2, bg1);
    bad.append_fanin(bg2, ba);
    bad.add_gate(CellType::Output, "o$po", {bg2});
    EXPECT_THROW(bad.finalize(), std::runtime_error);
}

TEST(Netlist, RejectsBadArity) {
    Netlist nl("bad_arity");
    const GateId a = nl.add_gate(CellType::Input, "a", {});
    nl.add_gate(CellType::Inv, "g", {a, a});  // Inv with two fanins
    EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, RejectsDuplicateNames) {
    Netlist nl("dups");
    nl.add_gate(CellType::Input, "a", {});
    EXPECT_THROW(nl.add_gate(CellType::Input, "a", {}), std::runtime_error);
}

TEST(Netlist, SequentialLoopThroughDffIsFine) {
    // s27 contains FF feedback loops; finalize must succeed.
    EXPECT_NO_THROW(make_s27());
}

TEST(Netlist, S27MatchesPublishedStatistics) {
    const Netlist nl = make_s27();
    EXPECT_EQ(nl.primary_inputs().size(), 4u);
    EXPECT_EQ(nl.primary_outputs().size(), 1u);
    EXPECT_EQ(nl.flip_flops().size(), 3u);
    EXPECT_EQ(nl.num_comb_gates(), 10u);
}

TEST(Netlist, MiniCircuitsBuild) {
    const Netlist adder = make_mini_adder();
    EXPECT_EQ(adder.primary_outputs().size(), 5u);
    EXPECT_EQ(adder.flip_flops().size(), 8u);
    const Netlist alu = make_mini_alu();
    EXPECT_EQ(alu.flip_flops().size(), 4u);
    EXPECT_GT(alu.num_comb_gates(), 20u);
    for (const std::string& name : embedded_circuit_names()) {
        EXPECT_NO_THROW(make_embedded_circuit(name));
    }
    EXPECT_THROW(make_embedded_circuit("nope"), std::runtime_error);
}

}  // namespace
}  // namespace fastmon
