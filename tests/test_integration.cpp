// Cross-module integration: the full pipeline's invariants, checked on
// circuits small enough to reason about, plus an end-to-end schedule
// validation against the detection table.
#include <gtest/gtest.h>

#include "fault/detection_range.hpp"
#include "flow/hdf_flow.hpp"
#include "monitor/shifting.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"
#include "schedule/validate.hpp"

namespace fastmon {
namespace {

HdfFlowConfig quick_config(std::uint64_t seed) {
    HdfFlowConfig config;
    config.seed = seed;
    config.atpg.max_random_batches = 25;
    config.atpg.max_idle_batches = 4;
    config.solver.time_limit_sec = 3.0;
    return config;
}

// The headline mechanism, end to end: a fault whose effects settle
// before t_min is invisible to conventional FAST but becomes visible
// through the monitor's shift.
TEST(Integration, ShortPathFaultVisibleOnlyThroughMonitor) {
    GeneratorConfig gc;
    gc.name = "mechanism";
    gc.n_gates = 500;
    gc.n_ffs = 60;
    gc.n_inputs = 14;
    gc.n_outputs = 14;
    gc.depth = 16;
    gc.spread = 0.9;
    gc.seed = 321;
    const Netlist nl = generate_circuit(gc);
    HdfFlow flow(nl, quick_config(321));
    flow.prepare();

    const Time t_min = flow.sta().clock_period / 3.0;
    std::size_t monitor_only = 0;
    for (std::size_t i = 0; i < flow.ranges().size(); ++i) {
        const FaultRanges& r = flow.ranges()[i];
        const bool conv = !flow.ff_range_in_window(i).empty();
        const bool prop = !flow.full_range_in_window(i).empty();
        if (prop && !conv) {
            ++monitor_only;
            // Such a fault's FF range must lie (partly) below t_min.
            ASSERT_FALSE(r.ff.empty());
            EXPECT_LT(r.ff.min(), t_min);
        }
        if (conv) {
            EXPECT_TRUE(prop);  // monitors never lose coverage
        }
    }
    EXPECT_GT(monitor_only, 10u);
}

// Detection ranges are consistent with the timing analysis.  Note the
// sound bound is the *output* arrival, not the path through the site:
// a fault effect can change the circuit state and thereby echo on
// later transitions that arrive over site-free paths.
TEST(Integration, RangesRespectStructuralBounds) {
    GeneratorConfig gc;
    gc.name = "bounds";
    gc.n_gates = 400;
    gc.n_ffs = 40;
    gc.n_inputs = 12;
    gc.n_outputs = 12;
    gc.depth = 12;
    gc.spread = 0.5;
    gc.seed = 322;
    const Netlist nl = generate_circuit(gc);
    HdfFlow flow(nl, quick_config(322));
    flow.prepare();
    const auto& sta = flow.sta();
    const auto& uni = flow.universe();
    const auto faults = flow.simulated_faults();
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const FaultRanges& r = flow.ranges()[i];
        if (r.ff.empty()) continue;
        const DelayFault& f = uni.fault(faults[i]);
        EXPECT_LE(r.ff.max(), sta.critical_path_length + f.delta + 1e-6)
            << uni.fault_name(nl, faults[i]);
        // The difference cannot begin before the fastest path through
        // the site even starts switching.
        EXPECT_GE(r.ff.min(), sta.min_arrival[f.site.gate] - 1e-6)
            << uni.fault_name(nl, faults[i]);
    }
}

// The full schedule produced by the flow validates against an
// independently computed detection table.
TEST(Integration, ScheduleValidatesAgainstDetectionTable) {
    GeneratorConfig gc;
    gc.name = "sched_valid";
    gc.n_gates = 450;
    gc.n_ffs = 50;
    gc.n_inputs = 12;
    gc.n_outputs = 12;
    gc.depth = 14;
    gc.spread = 0.8;
    gc.seed = 323;
    const Netlist nl = generate_circuit(gc);
    HdfFlow flow(nl, quick_config(323));
    flow.prepare();

    // Recreate step 1 + pass B + step 2 by hand from flow artifacts.
    std::vector<IntervalSet> target_ranges;
    std::vector<DelayFault> target_faults;
    std::vector<FaultRanges> target_fault_ranges;
    for (std::uint32_t pos : flow.target_positions()) {
        target_ranges.push_back(flow.full_range_in_window(pos));
        target_faults.push_back(
            flow.universe().fault(flow.simulated_faults()[pos]));
        target_fault_ranges.push_back(flow.ranges()[pos]);
    }
    ASSERT_FALSE(target_faults.empty());

    FrequencySelectOptions fopts;
    const FrequencySelection sel = select_frequencies(target_ranges, fopts);
    ASSERT_TRUE(sel.feasible);

    const WaveSim wave_sim(nl, flow.delays(), flow.config().wave);
    DetectionAnalysisConfig dac;
    dac.glitch_threshold = flow.delays().glitch_threshold();
    dac.horizon = flow.sta().clock_period * 1.02;
    const DetectionAnalyzer analyzer(wave_sim, flow.patterns().patterns,
                                     flow.placement().monitored, dac);
    const auto entries = analyzer.detection_table(
        target_faults, target_fault_ranges, sel.periods,
        flow.placement().config_delays);

    std::vector<std::uint32_t> all_targets(target_faults.size());
    for (std::uint32_t i = 0; i < all_targets.size(); ++i) all_targets[i] = i;
    PatternConfigOptions pco;
    const PatternConfigResult pc =
        select_pattern_configs(entries, sel.periods, all_targets, pco);
    EXPECT_TRUE(pc.uncovered_faults.empty());

    const ScheduleValidation v =
        validate_schedule(pc.schedule, entries, all_targets);
    EXPECT_TRUE(v.valid) << v.uncovered_faults.size() << " faults uncovered";
    EXPECT_EQ(v.covered, all_targets.size());
}

// The aggregated pass-A range equals the union of per-(pattern) ranges
// implied by pass-B detections: every (fault, period) claimed by the
// pass-B table is inside the aggregate full range.
TEST(Integration, PassBConsistentWithPassA) {
    const Netlist nl = make_mini_alu();
    HdfFlowConfig config = quick_config(324);
    config.monitor_fraction = 1.0;
    HdfFlow flow(nl, config);
    flow.prepare();

    std::vector<DelayFault> faults;
    std::vector<FaultRanges> ranges;
    for (std::size_t i = 0; i < flow.ranges().size(); ++i) {
        faults.push_back(flow.universe().fault(flow.simulated_faults()[i]));
        ranges.push_back(flow.ranges()[i]);
    }
    // Probe periods across the window.
    const Time clk = flow.sta().clock_period;
    std::vector<Time> periods;
    for (double f = 0.36; f < 1.0; f += 0.08) periods.push_back(f * clk);

    const WaveSim wave_sim(nl, flow.delays(), config.wave);
    DetectionAnalysisConfig dac;
    dac.glitch_threshold = flow.delays().glitch_threshold();
    dac.horizon = clk * 1.02;
    const DetectionAnalyzer analyzer(wave_sim, flow.patterns().patterns,
                                     flow.placement().monitored, dac);
    const auto entries = analyzer.detection_table(
        faults, ranges, periods, flow.placement().config_delays);
    EXPECT_FALSE(entries.empty());
    for (const DetectionEntry& e : entries) {
        const Time t = periods[e.period];
        const Time d = flow.placement().config_delays[e.config];
        const FaultRanges& r = ranges[e.fault_index];
        const bool in_ff = r.ff.contains(t);
        const bool in_sr = e.config != 0 && r.sr.contains(t - d);
        EXPECT_TRUE(in_ff || in_sr)
            << "fault " << e.fault_index << " period " << t << " config "
            << e.config;
    }
}

}  // namespace
}  // namespace fastmon
