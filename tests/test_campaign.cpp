// Campaign engine: population sampling, device rollout, aggregation,
// and the determinism contract (thread counts, cancellation).
#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <limits>

#include "netlist/iscas_data.hpp"
#include "timing/batch_sta_engine.hpp"
#include "timing/sta.hpp"
#include "util/cancel.hpp"
#include "util/diagnostic.hpp"

namespace fastmon {
namespace {

PopulationModel test_model() {
    PopulationModel model;
    model.defect.incidence = 0.3;
    return model;
}

TEST(YearGrid, UniformFromZero) {
    const std::vector<double> grid = make_year_grid(2.0, 0.5);
    ASSERT_EQ(grid.size(), 5u);
    EXPECT_DOUBLE_EQ(grid.front(), 0.0);
    EXPECT_DOUBLE_EQ(grid[1], 0.5);
    EXPECT_DOUBLE_EQ(grid.back(), 2.0);
    // i * step, not repeated addition: no drift at fine steps.
    const std::vector<double> fine = make_year_grid(15.0, 0.25);
    EXPECT_DOUBLE_EQ(fine[33], 33 * 0.25);
}

TEST(YearGrid, RejectsDegenerateParameters) {
    constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(make_year_grid(kNan, 0.25), Diagnostic);
    EXPECT_THROW(make_year_grid(kInf, 0.25), Diagnostic);
    EXPECT_THROW(make_year_grid(-1.0, 0.25), Diagnostic);
    EXPECT_THROW(make_year_grid(10.0, kNan), Diagnostic);
    EXPECT_THROW(make_year_grid(10.0, kInf), Diagnostic);
    EXPECT_THROW(make_year_grid(10.0, 0.0), Diagnostic);
    EXPECT_THROW(make_year_grid(10.0, -0.5), Diagnostic);
    // A step larger than a positive horizon would silently degrade the
    // sweep to the single deployment point.
    EXPECT_THROW(make_year_grid(2.0, 5.0), Diagnostic);
    try {
        make_year_grid(10.0, 0.0);
        FAIL() << "expected a Diagnostic";
    } catch (const Diagnostic& d) {
        EXPECT_EQ(d.source(), "campaign");
        EXPECT_NE(std::string(d.what()).find("step"), std::string::npos);
    }
    // A zero horizon is valid (deployment-only grid), any step goes.
    EXPECT_EQ(make_year_grid(0.0, 5.0).size(), 1u);
}

TEST(Population, SampleIsDeterministicPerIndex) {
    const Netlist nl = make_mini_alu();
    const std::vector<GateId> sites = combinational_sites(nl);
    const PopulationModel model = test_model();
    const DeviceSample a = sample_device(model, 7, 3, sites, 200.0);
    const DeviceSample b = sample_device(model, 7, 3, sites, 200.0);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_DOUBLE_EQ(a.aging.amplitude, b.aging.amplitude);
    ASSERT_EQ(a.defects.size(), b.defects.size());
    for (std::size_t i = 0; i < a.defects.size(); ++i) {
        EXPECT_EQ(a.defects[i].site, b.defects[i].site);
        EXPECT_DOUBLE_EQ(a.defects[i].delta0, b.defects[i].delta0);
        EXPECT_DOUBLE_EQ(a.defects[i].growth_per_year,
                         b.defects[i].growth_per_year);
    }
    const DeviceSample other = sample_device(model, 7, 4, sites, 200.0);
    EXPECT_NE(a.seed, other.seed);
}

TEST(Population, IncidenceBoundsAndDefectRanges) {
    const Netlist nl = make_mini_alu();
    const std::vector<GateId> sites = combinational_sites(nl);
    constexpr Time kClock = 200.0;

    PopulationModel clean = test_model();
    clean.defect.incidence = 0.0;
    PopulationModel always = test_model();
    always.defect.incidence = 1.0;

    std::size_t marginal = 0;
    for (std::uint32_t i = 0; i < 64; ++i) {
        EXPECT_FALSE(sample_device(clean, 1, i, sites, kClock).marginal());
        const DeviceSample d = sample_device(always, 1, i, sites, kClock);
        EXPECT_TRUE(d.marginal());
        marginal += d.marginal();
        EXPECT_LE(d.defects.size(), always.defect.max_defects);
        for (const MarginalDefect& defect : d.defects) {
            EXPECT_TRUE(std::any_of(
                sites.begin(), sites.end(),
                [&](GateId g) { return g == defect.site.gate; }));
            EXPECT_GT(defect.delta0, 0.0);
            EXPECT_GE(defect.growth_per_year, always.defect.growth_min);
            EXPECT_LE(defect.growth_per_year, always.defect.growth_max);
            EXPECT_DOUBLE_EQ(defect.delta_max,
                             always.defect.delta_max_fraction * kClock);
        }
    }
    EXPECT_EQ(marginal, 64u);
}

TEST(Population, AgingAmplitudeJittersAroundNominal) {
    const Netlist nl = make_mini_alu();
    const std::vector<GateId> sites = combinational_sites(nl);
    const PopulationModel model = test_model();
    RunningStats amplitudes;
    for (std::uint32_t i = 0; i < 256; ++i) {
        const DeviceSample d = sample_device(model, 3, i, sites, 200.0);
        EXPECT_GT(d.aging.amplitude, 0.0);
        amplitudes.add(d.aging.amplitude);
    }
    // Lognormal jitter spreads the population but keeps the nominal
    // scale (median = nominal amplitude).
    EXPECT_GT(amplitudes.stddev(), 0.01);
    EXPECT_NEAR(amplitudes.mean(), model.aging.nominal.amplitude, 0.15);
}

struct CampaignFixture : ::testing::Test {
    Netlist nl = make_mini_alu();

    CampaignConfig small_config() const {
        CampaignConfig config;
        config.population = 24;
        config.seed = 11;
        config.model = test_model();
        config.num_threads = 1;
        return config;
    }
};

TEST_F(CampaignFixture, RolloutOutcomesAreWellFormed) {
    const CampaignConfig config = small_config();
    const CampaignResult result = run_campaign(nl, config);
    ASSERT_EQ(result.outcomes.size(), config.population);
    EXPECT_TRUE(result.status.complete());
    EXPECT_GT(result.num_monitors, 0u);
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
        const DeviceOutcome& out = result.outcomes[i];
        EXPECT_EQ(out.index, i);
        // One first-alert entry per monitor configuration; config 0
        // (monitors off) never alerts.
        ASSERT_GE(out.first_alert_years.size(), 2u);
        EXPECT_DOUBLE_EQ(out.first_alert_years[0], -1.0);
        EXPECT_GT(out.margin_used_t0, 0.0);
        EXPECT_LT(out.margin_used_t0, 1.0);
        EXPECT_GE(out.screen_score, 0.0);
        if (out.failure_years >= 0.0) {
            EXPECT_LE(out.failure_years, config.horizon_years);
        }
    }
}

TEST_F(CampaignFixture, ThreadCountDoesNotChangeTheAggregate) {
    CampaignConfig serial = small_config();
    CampaignConfig dedicated = small_config();
    dedicated.num_threads = 3;
    CampaignConfig shared = small_config();
    shared.num_threads = 0;

    const CampaignResult a = run_campaign(nl, serial);
    const CampaignResult b = run_campaign(nl, dedicated);
    const CampaignResult c = run_campaign(nl, shared);
    EXPECT_EQ(a.outcomes, b.outcomes);
    EXPECT_EQ(a.outcomes, c.outcomes);
    // The deterministic report blocks ("campaign" and "aggregate" — the
    // "run" block carries wall times) are bit-identical.
    const Json ja = a.to_json(serial);
    const Json jb = b.to_json(dedicated);
    for (const char* block : {"campaign", "aggregate"}) {
        ASSERT_NE(ja.find(block), nullptr);
        ASSERT_NE(jb.find(block), nullptr);
        EXPECT_EQ(ja.find(block)->dump(2), jb.find(block)->dump(2));
    }
}

TEST_F(CampaignFixture, BadGridFailsPrepareButReturnsHonestStatus) {
    // run_campaign must not leak the Diagnostic: campaign_prepare
    // records Failed, the downstream phases are Skipped, and the
    // result reports incomplete instead of crashing the campaign CLI.
    CampaignConfig config = small_config();
    config.step_years = 0.0;
    const CampaignResult result = run_campaign(nl, config);
    EXPECT_FALSE(result.status.complete());
    EXPECT_TRUE(result.outcomes.empty());
    ASSERT_FALSE(result.status.phases.empty());
    EXPECT_EQ(result.status.phases.front().name, "campaign_prepare");
    EXPECT_EQ(result.status.phases.front().outcome, PhaseOutcome::Failed);
}

TEST_F(CampaignFixture, FullStaMatchesIncremental) {
    // The differential contract the bench and CI also enforce: the
    // legacy from-scratch STA mode reproduces the incremental engine's
    // outcomes and deterministic report blocks bit-for-bit.
    CampaignConfig incremental = small_config();
    CampaignConfig full = small_config();
    full.full_sta = true;
    full.num_threads = 2;  // sharded engines vs serial full rebuilds

    const CampaignResult a = run_campaign(nl, incremental);
    const CampaignResult b = run_campaign(nl, full);
    EXPECT_EQ(a.outcomes, b.outcomes);
    const Json ja = a.to_json(incremental);
    const Json jb = b.to_json(full);
    for (const char* block : {"campaign", "aggregate"}) {
        ASSERT_NE(ja.find(block), nullptr);
        ASSERT_NE(jb.find(block), nullptr);
        EXPECT_EQ(ja.find(block)->dump(2), jb.find(block)->dump(2));
    }
    // The mode is surfaced in the non-deterministic "run" block only.
    ASSERT_NE(jb.find("run"), nullptr);
    ASSERT_NE(jb.find("run")->find("sta_mode"), nullptr);
    EXPECT_EQ(jb.find("run")->find("sta_mode")->as_string(), "full_rebuild");
    EXPECT_EQ(ja.find("run")->find("sta_mode")->as_string(),
              kBatchWidth > 1 ? "batched" : "incremental");
}

TEST_F(CampaignFixture, BatchedMatchesScalarAcrossWidthsBitwise) {
    // The tentpole differential: the batched SoA engine must reproduce
    // the scalar incremental path bit-for-bit at every runtime width
    // (1 = scalar reference; 4 and the compiled default exercise full
    // and clamped batches, plus a ragged tail at population 24).
    CampaignConfig scalar = small_config();
    scalar.batch_width = 1;
    const CampaignResult reference = run_campaign(nl, scalar);
    const Json jref = reference.to_json(scalar);

    for (const std::size_t width : {std::size_t{4}, std::size_t{0}}) {
        CampaignConfig batched = small_config();
        batched.batch_width = width;
        const CampaignResult result = run_campaign(nl, batched);
        EXPECT_EQ(result.outcomes, reference.outcomes) << "width " << width;
        const Json jb = result.to_json(batched);
        for (const char* block : {"campaign", "aggregate"}) {
            ASSERT_NE(jb.find(block), nullptr);
            EXPECT_EQ(jb.find(block)->dump(2), jref.find(block)->dump(2))
                << "width " << width;
        }
        // Run-block bookkeeping: resolved width and mode.
        const Json* run = jb.find("run");
        ASSERT_NE(run, nullptr);
        const std::size_t resolved = width == 0 ? kBatchWidth : width;
        EXPECT_EQ(static_cast<std::size_t>(
                      run->find("batch_width")->as_number()),
                  std::min(resolved, kBatchWidth));
        EXPECT_EQ(run->find("sta_mode")->as_string(),
                  std::min(resolved, kBatchWidth) > 1 ? "batched"
                                                      : "incremental");
    }
    ASSERT_NE(jref.find("run"), nullptr);
    EXPECT_EQ(jref.find("run")->find("sta_mode")->as_string(), "incremental");
}

TEST_F(CampaignFixture, BatchedMultiWorkerMatchesSerialScalar) {
    // Batched shards on a real pool (TSan job covers this test too):
    // worker count must not leak into outcomes or aggregate blocks.
    CampaignConfig scalar = small_config();
    scalar.batch_width = 1;
    CampaignConfig batched_pool = small_config();
    batched_pool.num_threads = 3;
    batched_pool.batch_width = 0;  // compiled width

    const CampaignResult a = run_campaign(nl, scalar);
    const CampaignResult b = run_campaign(nl, batched_pool);
    EXPECT_EQ(a.outcomes, b.outcomes);
    const Json ja = a.to_json(scalar);
    const Json jb = b.to_json(batched_pool);
    for (const char* block : {"campaign", "aggregate"}) {
        EXPECT_EQ(ja.find(block)->dump(2), jb.find(block)->dump(2));
    }
}

TEST_F(CampaignFixture, ScreenScorePredictsEarlyFailures) {
    // A statistically meaningful population: the burn-in screen score
    // must rank actual early-life failures above survivors clearly
    // better than chance (this is the paper's core claim).
    CampaignConfig config = small_config();
    config.population = 200;
    const CampaignResult result = run_campaign(nl, config);
    const CampaignAggregate& agg = result.aggregate;
    ASSERT_GT(agg.classification.positives, 0u);
    ASSERT_GT(agg.classification.negatives, 0u);
    EXPECT_GT(agg.classification.roc_auc, 0.6);
    // Marginal devices exist at ~incidence rate.
    EXPECT_NEAR(static_cast<double>(agg.marginal) / 200.0,
                config.model.defect.incidence, 0.1);
}

TEST_F(CampaignFixture, CancelledCampaignReturnsHonestPartialResult) {
    CancelToken::global().cancel(CancelCause::Test);
    const CampaignConfig config = small_config();
    const CampaignResult result = run_campaign(nl, config);
    CancelToken::global().reset();

    EXPECT_TRUE(result.status.cancelled);
    EXPECT_EQ(result.status.cancel_cause, CancelCause::Test);
    EXPECT_FALSE(result.status.complete());
    EXPECT_LT(result.devices_completed, config.population);
    const PhaseStatus* rollout = result.status.find("campaign_rollout");
    ASSERT_NE(rollout, nullptr);
    EXPECT_EQ(rollout->outcome, PhaseOutcome::Degraded);
    // The aggregate covers exactly the completed prefix.
    EXPECT_EQ(result.aggregate.population, result.devices_completed);
}

TEST(Aggregate, CountsAndOperatingPoint) {
    // Hand-built outcomes: two true early failures (one screened, one
    // missed), one false alarm, one clean survivor.
    DeviceOutcome caught;
    caught.index = 0;
    caught.marginal = true;
    caught.screen_score = 1.8;
    caught.failure_years = 1.0;
    caught.first_alert_years = {-1.0, 0.25, 0.5};
    DeviceOutcome missed;
    missed.index = 1;
    missed.marginal = true;
    missed.screen_score = 0.0;
    missed.failure_years = 2.0;
    missed.first_alert_years = {-1.0, 1.0, 1.5};
    DeviceOutcome false_alarm;
    false_alarm.index = 2;
    false_alarm.screen_score = 1.1;
    false_alarm.failure_years = 12.0;  // wear-out, not early
    false_alarm.first_alert_years = {-1.0, 10.0, 11.0};
    DeviceOutcome survivor;
    survivor.index = 3;
    survivor.screen_score = 0.0;
    survivor.first_alert_years = {-1.0, -1.0, -1.0};

    const std::vector<DeviceOutcome> outcomes{caught, missed, false_alarm,
                                              survivor};
    const CampaignAggregate agg =
        aggregate_outcomes(outcomes, AggregateConfig{3.0});

    EXPECT_EQ(agg.population, 4u);
    EXPECT_EQ(agg.marginal, 2u);
    EXPECT_EQ(agg.failed, 3u);
    EXPECT_EQ(agg.early_failures, 2u);
    EXPECT_EQ(agg.survived, 1u);
    EXPECT_EQ(agg.classification.positives, 2u);
    EXPECT_EQ(agg.classification.negatives, 2u);
    EXPECT_EQ(agg.classification.true_positives, 1u);
    EXPECT_EQ(agg.classification.false_positives, 1u);
    EXPECT_EQ(agg.classification.false_negatives, 1u);
    EXPECT_EQ(agg.classification.true_negatives, 1u);
    EXPECT_DOUBLE_EQ(agg.classification.precision, 0.5);
    EXPECT_DOUBLE_EQ(agg.classification.recall, 0.5);
    // Lead times: only devices with both an alert and a failure count.
    EXPECT_EQ(agg.lead_time_imminent.count, 3u);
    // caught: 1.0 - 0.25 = 0.75 on the widest band ladder entry.
    EXPECT_GT(agg.lead_time_wide.mean, 0.0);
    // Wear-out curve covers the failed non-marginal devices only.
    EXPECT_EQ(agg.wearout_failure_years.count, 1u);
    EXPECT_DOUBLE_EQ(agg.wearout_failure_years.p50, 12.0);
}

TEST(Aggregate, CsvHasHeaderAndOneRowPerOutcome) {
    DeviceOutcome out;
    out.index = 5;
    out.marginal = true;
    out.first_alert_years = {-1.0, 2.0, 3.0};
    out.failure_years = 4.0;
    const std::string csv = outcomes_csv(std::vector<DeviceOutcome>{out});
    EXPECT_NE(csv.find("index,marginal,"), std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
    EXPECT_NE(csv.find("\n5,1,"), std::string::npos);
}

TEST(Aggregate, EmptyPopulationIsSafe) {
    const CampaignAggregate agg =
        aggregate_outcomes(std::vector<DeviceOutcome>{}, AggregateConfig{});
    EXPECT_EQ(agg.population, 0u);
    EXPECT_DOUBLE_EQ(agg.classification.roc_auc, 0.5);
    EXPECT_EQ(agg.lead_time_wide.count, 0u);
    EXPECT_TRUE(std::isfinite(agg.classification.average_precision));
}

}  // namespace
}  // namespace fastmon
