// Fleet supervision: directory-queue mechanics (atomic claims,
// requeue, quarantine, stale-claim recovery), scripted failure
// scenarios through a fake launcher (crash, hang, corrupt artifact,
// poison job), and real-subprocess end-to-end recovery: a
// crash-injected / hung shard is retried from its checkpoint and the
// merged report converges bit-identically to the single-process run.
#include "campaign/fleet.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/shard.hpp"
#include "netlist/iscas_data.hpp"
#include "util/fault_inject.hpp"

namespace fastmon {
namespace {

class FleetTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("fastmon_fleet_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override {
        FaultInjector::global().reset();
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
    [[nodiscard]] std::string root() const { return dir_.string(); }

    /// Campaign every scenario here shards: small but large enough
    /// that every shard of 3 owns several devices.
    [[nodiscard]] CampaignConfig campaign_config() const {
        CampaignConfig c;
        c.population = 21;
        c.seed = 7;
        c.model.defect.incidence = 0.3;
        c.num_threads = 1;
        c.checkpoint_every = 4;
        return c;
    }

    /// Supervisor knobs tuned for test speed.
    [[nodiscard]] FleetConfig fleet_config(std::uint32_t shards) const {
        FleetConfig f;
        f.root = root();
        f.shard_count = shards;
        f.max_parallel = 2;
        f.poll_seconds = 0.005;
        f.stall_timeout_seconds = 0.25;
        f.backoff_initial_seconds = 0.01;
        f.backoff_max_seconds = 0.05;
        return f;
    }

    void enqueue_shards(FleetQueue& queue, std::uint32_t count) {
        for (std::uint32_t s = 0; s < count; ++s) {
            FleetJob job;
            job.id = "shard-" + std::to_string(s);
            job.shard_index = s;
            job.shard_count = count;
            ASSERT_TRUE(queue.enqueue(job));
        }
    }

    /// Merges the fleet's shard artifacts and asserts the campaign and
    /// aggregate blocks are bit-identical to the unsharded run.
    void expect_bit_identical_merge(std::uint32_t shards) {
        const CampaignConfig plain = campaign_config();
        const Json reference = run_campaign(nl_, plain).to_json(plain);
        std::vector<std::string> paths;
        for (std::uint32_t s = 0; s < shards; ++s) {
            paths.push_back(shard_artifact_path(root(), s));
        }
        const ShardMerge merged = merge_shard_results(paths);
        ASSERT_TRUE(merged.complete);
        EXPECT_EQ(merged.report.find("campaign")->dump(2),
                  reference.find("campaign")->dump(2));
        EXPECT_EQ(merged.report.find("aggregate")->dump(2),
                  reference.find("aggregate")->dump(2));
    }

    Netlist nl_ = make_mini_alu();
    std::filesystem::path dir_;
};

TEST_F(FleetTest, JobJsonRoundTrip) {
    FleetJob job;
    job.id = "shard-3";
    job.shard_index = 3;
    job.shard_count = 8;
    job.attempts = 2;
    job.last_error = "exit code 70";
    job.fault_inject = "shard.crash@5";
    job.fault_first_attempt_only = false;
    const auto back = FleetJob::from_json(job.to_json());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->id, job.id);
    EXPECT_EQ(back->shard_index, job.shard_index);
    EXPECT_EQ(back->shard_count, job.shard_count);
    EXPECT_EQ(back->attempts, job.attempts);
    EXPECT_EQ(back->last_error, job.last_error);
    EXPECT_EQ(back->fault_inject, job.fault_inject);
    EXPECT_EQ(back->fault_first_attempt_only, job.fault_first_attempt_only);

    EXPECT_FALSE(FleetJob::from_json(Json::object()));
}

TEST_F(FleetTest, QueueClaimIsExclusiveAndTransitionsAreDurable) {
    FleetQueue queue(root());
    ASSERT_TRUE(queue.init());
    enqueue_shards(queue, 2);
    EXPECT_EQ(queue.pending(),
              (std::vector<std::string>{"shard-0", "shard-1"}));

    // Claim moves the job out of queue/; a second claim loses the race.
    auto job = queue.claim("shard-0");
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->shard_index, 0u);
    EXPECT_FALSE(queue.claim("shard-0").has_value());
    EXPECT_EQ(queue.pending(), std::vector<std::string>{"shard-1"});

    // A failed attempt goes back to the queue with its bookkeeping.
    job->attempts = 1;
    job->last_error = "exit code 70";
    ASSERT_TRUE(queue.requeue(*job));
    EXPECT_EQ(queue.pending(),
              (std::vector<std::string>{"shard-0", "shard-1"}));
    job = queue.claim("shard-0");
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->attempts, 1u);
    EXPECT_EQ(job->last_error, "exit code 70");

    ASSERT_TRUE(queue.complete(*job));
    EXPECT_EQ(queue.done(), std::vector<std::string>{"shard-0"});

    auto poison = queue.claim("shard-1");
    ASSERT_TRUE(poison.has_value());
    ASSERT_TRUE(queue.quarantine(*poison, "kept crashing"));
    EXPECT_EQ(queue.quarantined(), std::vector<std::string>{"shard-1"});
    EXPECT_TRUE(queue.pending().empty());
}

TEST_F(FleetTest, RecoverStaleRequeuesClaimsLeftByADeadSupervisor) {
    FleetQueue queue(root());
    ASSERT_TRUE(queue.init());
    enqueue_shards(queue, 2);
    ASSERT_TRUE(queue.claim("shard-0").has_value());
    ASSERT_TRUE(queue.claim("shard-1").has_value());
    EXPECT_TRUE(queue.pending().empty());
    // The "supervisor" dies here without resolving its claims.
    EXPECT_EQ(queue.recover_stale(), 2u);
    EXPECT_EQ(queue.pending(),
              (std::vector<std::string>{"shard-0", "shard-1"}));
    EXPECT_EQ(queue.recover_stale(), 0u);
}

/// What a scripted fake worker does on one attempt.
enum class Act : std::uint8_t {
    Ok,       ///< run the shard in-process, write a valid artifact
    Crash,    ///< exit 70 immediately, no artifact
    Hang,     ///< never exit (the supervisor must stall-kill it)
    Corrupt,  ///< run the shard but flip a digit in the artifact
};

class FakeHandle : public ShardHandle {
public:
    explicit FakeHandle(std::optional<int> status) : status_(status) {}
    std::optional<int> poll() override {
        return killed_ ? std::optional<int>(137) : status_;
    }
    void kill() override { killed_ = true; }

private:
    std::optional<int> status_;
    bool killed_ = false;
};

/// Runs shard attempts in-process, following a per-shard script of
/// Acts (attempts past the end of the script run clean).
class FakeLauncher : public ShardLauncher {
public:
    FakeLauncher(const Netlist& nl, CampaignConfig base)
        : nl_(nl), base_(std::move(base)) {}

    std::map<std::uint32_t, std::vector<Act>> script;
    std::size_t launches = 0;

    std::unique_ptr<ShardHandle> launch(const ShardLaunch& spec,
                                        std::string*) override {
        ++launches;
        Act act = Act::Ok;
        if (const auto it = script.find(spec.shard_index);
            it != script.end() && spec.attempt <= it->second.size()) {
            act = it->second[spec.attempt - 1];
        }
        if (act == Act::Crash) return std::make_unique<FakeHandle>(70);
        if (act == Act::Hang) {
            return std::make_unique<FakeHandle>(std::nullopt);
        }
        CampaignConfig c = base_;
        c.shard_index = spec.shard_index;
        c.shard_count = spec.shard_count;
        c.checkpoint_path = spec.checkpoint_path;
        c.resume = std::filesystem::exists(spec.checkpoint_path);
        const CampaignResult result = run_campaign(nl_, c);
        if (act == Act::Corrupt) {
            FaultInjector::global().arm("shard.corrupt_artifact");
        }
        save_shard_result(spec.artifact_path,
                          make_shard_result(nl_, c, result));
        return std::make_unique<FakeHandle>(0);
    }

private:
    const Netlist& nl_;
    CampaignConfig base_;
};

TEST_F(FleetTest, CleanFleetConvergesBitIdentically) {
    FleetQueue queue(root());
    ASSERT_TRUE(queue.init());
    enqueue_shards(queue, 3);
    FakeLauncher launcher(nl_, campaign_config());
    const FleetReport report =
        run_fleet(fleet_config(3), queue, launcher);
    EXPECT_EQ(report.jobs_done, 3u);
    EXPECT_EQ(report.jobs_quarantined, 0u);
    EXPECT_EQ(report.retries, 0u);
    EXPECT_STREQ(report.status.overall(), "ok");
    EXPECT_EQ(launcher.launches, 3u);
    expect_bit_identical_merge(3);
}

TEST_F(FleetTest, CrashedShardIsRetriedAndConverges) {
    FleetQueue queue(root());
    ASSERT_TRUE(queue.init());
    enqueue_shards(queue, 3);
    FakeLauncher launcher(nl_, campaign_config());
    launcher.script[1] = {Act::Crash};
    const FleetReport report =
        run_fleet(fleet_config(3), queue, launcher);
    EXPECT_EQ(report.jobs_done, 3u);
    EXPECT_EQ(report.retries, 1u);
    EXPECT_STREQ(report.status.overall(), "degraded");
    ASSERT_EQ(report.jobs.size(), 3u);
    EXPECT_EQ(report.jobs[1].attempts, 2u);
    EXPECT_NE(report.jobs[1].detail.find("exit code 70"),
              std::string::npos);
    expect_bit_identical_merge(3);
}

TEST_F(FleetTest, HungShardIsKilledAndRetried) {
    FleetQueue queue(root());
    ASSERT_TRUE(queue.init());
    enqueue_shards(queue, 2);
    FakeLauncher launcher(nl_, campaign_config());
    launcher.script[0] = {Act::Hang};
    const FleetReport report =
        run_fleet(fleet_config(2), queue, launcher);
    EXPECT_EQ(report.jobs_done, 2u);
    EXPECT_EQ(report.stalls_killed, 1u);
    EXPECT_EQ(report.retries, 1u);
    ASSERT_EQ(report.jobs.size(), 2u);
    EXPECT_NE(report.jobs[0].detail.find("hung"), std::string::npos);
    expect_bit_identical_merge(2);
}

TEST_F(FleetTest, CorruptArtifactCountsAsAFailedAttempt) {
    FleetQueue queue(root());
    ASSERT_TRUE(queue.init());
    enqueue_shards(queue, 2);
    FakeLauncher launcher(nl_, campaign_config());
    launcher.script[1] = {Act::Corrupt};
    const FleetReport report =
        run_fleet(fleet_config(2), queue, launcher);
    EXPECT_EQ(report.jobs_done, 2u);
    EXPECT_EQ(report.retries, 1u);
    ASSERT_EQ(report.jobs.size(), 2u);
    EXPECT_NE(report.jobs[1].detail.find("checksum"), std::string::npos);
    expect_bit_identical_merge(2);
}

TEST_F(FleetTest, PoisonJobIsQuarantinedAndTheRestStillMerge) {
    FleetQueue queue(root());
    ASSERT_TRUE(queue.init());
    enqueue_shards(queue, 3);
    FakeLauncher launcher(nl_, campaign_config());
    launcher.script[1] = {Act::Crash, Act::Crash, Act::Crash};
    FleetConfig config = fleet_config(3);
    config.max_attempts = 2;
    const FleetReport report = run_fleet(config, queue, launcher);
    EXPECT_EQ(report.jobs_done, 2u);
    EXPECT_EQ(report.jobs_quarantined, 1u);
    EXPECT_STREQ(report.status.overall(), "degraded");
    ASSERT_EQ(report.jobs.size(), 3u);
    EXPECT_EQ(report.jobs[1].state, "quarantined");
    EXPECT_EQ(report.jobs[1].attempts, 2u);
    EXPECT_EQ(queue.quarantined(), std::vector<std::string>{"shard-1"});

    // The survivors still merge into an honest partial report.
    const ShardMerge merged = merge_shard_results(
        {shard_artifact_path(root(), 0), shard_artifact_path(root(), 1),
         shard_artifact_path(root(), 2)});
    EXPECT_TRUE(merged.mergeable);
    EXPECT_FALSE(merged.complete);
    EXPECT_EQ(merged.shards[1].state, ShardState::Missing);
    EXPECT_EQ(merged.devices_merged, 14u);  // 21 devices minus shard 1
    EXPECT_STREQ(merged.status.overall(), "degraded");
}

TEST_F(FleetTest, EveryJobPoisonedFailsHonestly) {
    FleetQueue queue(root());
    ASSERT_TRUE(queue.init());
    enqueue_shards(queue, 1);
    FakeLauncher launcher(nl_, campaign_config());
    launcher.script[0] = {Act::Crash, Act::Crash};
    FleetConfig config = fleet_config(1);
    config.max_attempts = 2;
    const FleetReport report = run_fleet(config, queue, launcher);
    EXPECT_EQ(report.jobs_done, 0u);
    EXPECT_EQ(report.jobs_quarantined, 1u);
    const PhaseStatus* execute = report.status.find("fleet_execute");
    ASSERT_NE(execute, nullptr);
    EXPECT_EQ(execute->outcome, PhaseOutcome::Failed);
    EXPECT_NE(execute->detail.find("every job"), std::string::npos);
}

// --- Real-subprocess end-to-end recovery -----------------------------
//
// These spawn the actual fastmon_campaign binary (path baked in by the
// build) through the production SubprocessShardLauncher, with faults
// injected via FASTMON_FAULT_INJECT in the worker environment.

class FleetSubprocessTest : public FleetTest {
protected:
    /// CLI arguments matching campaign_config() above; the launcher
    /// appends the shard / artifact / checkpoint / heartbeat flags.
    [[nodiscard]] std::vector<std::string> campaign_args() const {
        return {"--population",       "21",  "--seed",
                "7",                  "--defect-rate", "0.3",
                "--threads",          "1",   "--checkpoint-every",
                "4",                  "--quiet", "--out",
                root() + "/worker_report.json"};
    }

    /// Enqueues shards with a fault spec on one of them.
    void enqueue_with_fault(FleetQueue& queue, std::uint32_t count,
                            std::uint32_t faulty,
                            const std::string& spec,
                            bool first_attempt_only = true) {
        for (std::uint32_t s = 0; s < count; ++s) {
            FleetJob job;
            job.id = "shard-" + std::to_string(s);
            job.shard_index = s;
            job.shard_count = count;
            if (s == faulty) {
                job.fault_inject = spec;
                job.fault_first_attempt_only = first_attempt_only;
            }
            ASSERT_TRUE(queue.enqueue(job));
        }
    }
};

TEST_F(FleetSubprocessTest, CrashInjectedShardResumesToBitIdenticalMerge) {
    FleetQueue queue(root());
    ASSERT_TRUE(queue.init());
    // Shard 1 of 2 owns ~10 devices; dying at its 5th device leaves a
    // checkpoint behind (checkpoint-every 4), so the retry resumes.
    enqueue_with_fault(queue, 2, 1, "shard.crash@5");
    FleetConfig config = fleet_config(2);
    config.stall_timeout_seconds = 30.0;  // only crash recovery here
    SubprocessShardLauncher launcher(FASTMON_CAMPAIGN_BIN,
                                     campaign_args());
    const FleetReport report = run_fleet(config, queue, launcher);
    EXPECT_EQ(report.jobs_done, 2u);
    EXPECT_EQ(report.retries, 1u);
    ASSERT_EQ(report.jobs.size(), 2u);
    EXPECT_EQ(report.jobs[1].attempts, 2u);
    // shard.crash exits 70 — a SIGKILL-equivalent hard death.
    EXPECT_NE(report.jobs[1].detail.find("exit code 70"),
              std::string::npos);
    expect_bit_identical_merge(2);

    // The retried shard genuinely resumed: its checkpoint held the
    // pre-crash prefix and survives the successful second attempt.
    EXPECT_TRUE(std::filesystem::exists(shard_checkpoint_path(root(), 1)));
}

TEST_F(FleetSubprocessTest, HungShardIsStallKilledAndResumes) {
    FleetQueue queue(root());
    ASSERT_TRUE(queue.init());
    enqueue_with_fault(queue, 2, 0, "shard.hang@5");
    FleetConfig config = fleet_config(2);
    config.stall_timeout_seconds = 1.0;
    ::setenv("FASTMON_HEARTBEAT", "0.05", 1);
    SubprocessShardLauncher launcher(FASTMON_CAMPAIGN_BIN,
                                     campaign_args());
    const FleetReport report = run_fleet(config, queue, launcher);
    ::unsetenv("FASTMON_HEARTBEAT");
    EXPECT_EQ(report.jobs_done, 2u);
    EXPECT_EQ(report.stalls_killed, 1u);
    EXPECT_EQ(report.retries, 1u);
    ASSERT_EQ(report.jobs.size(), 2u);
    EXPECT_NE(report.jobs[0].detail.find("hung"), std::string::npos);
    expect_bit_identical_merge(2);
}

TEST_F(FleetSubprocessTest, PersistentCrashIsQuarantined) {
    FleetQueue queue(root());
    ASSERT_TRUE(queue.init());
    enqueue_with_fault(queue, 2, 0, "shard.crash@2",
                       /*first_attempt_only=*/false);
    FleetConfig config = fleet_config(2);
    config.max_attempts = 2;
    config.stall_timeout_seconds = 30.0;
    SubprocessShardLauncher launcher(FASTMON_CAMPAIGN_BIN,
                                     campaign_args());
    const FleetReport report = run_fleet(config, queue, launcher);
    EXPECT_EQ(report.jobs_done, 1u);
    EXPECT_EQ(report.jobs_quarantined, 1u);
    EXPECT_EQ(queue.quarantined(), std::vector<std::string>{"shard-0"});
    EXPECT_STREQ(report.status.overall(), "degraded");
}

TEST(FleetPaths, AreRootedAndDistinct) {
    EXPECT_EQ(shard_artifact_path("/r", 2), "/r/shards/shard-2.json");
    EXPECT_EQ(shard_checkpoint_path("/r", 2),
              "/r/shards/shard-2.ckpt.json");
    EXPECT_EQ(shard_heartbeat_path("/r", 2),
              "/r/shards/shard-2.heartbeat.json");
    EXPECT_NE(shard_log_path("/r", 2, 1), shard_log_path("/r", 2, 2));
}

}  // namespace
}  // namespace fastmon
