// SAT-based transition-fault ATPG (atpg/sat_atpg.hpp, atpg/engine.hpp).
//
// The load-bearing checks:
//   * differential: PODEM (with an effectively unlimited backtrack
//     budget) and the SAT engine agree on testable/untestable for every
//     fault of the embedded ISCAS-style suite and a generated paper
//     profile — and every SAT witness is validated by the reference
//     transition-fault simulator, so the CNF encoding is checked
//     against an independent semantics, not against itself;
//   * completeness where PODEM gives up: on a generated s9234 profile
//     with a tiny backtrack limit PODEM aborts on hundreds of faults;
//     the SAT engine must resolve every one of them;
//   * the AtpgEngine seam: the factory returns the right engine,
//     auto mode falls back PODEM -> SAT, and the injected
//     solver.sat_budget fault surfaces as an Aborted verdict rather
//     than a wrong answer.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "atpg/engine.hpp"
#include "atpg/sat_atpg.hpp"
#include "atpg/tfault_sim.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"
#include "netlist/structures.hpp"
#include "util/fault_inject.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

Netlist generated_s9234() {
    GeneratorConfig cfg = profile_config(find_profile("s9234"), 0.05);
    cfg.seed = 11;
    return generate_circuit(cfg);
}

struct DifferentialCounts {
    int testable = 0;
    int untestable = 0;
    int mismatches = 0;
    int aborts = 0;
    int bad_witnesses = 0;
};

/// Runs every fault of `nl` through PODEM (large backtrack budget) and
/// the SAT engine (unlimited conflicts) and cross-checks the verdicts;
/// testable SAT faults additionally get their witness validated with
/// TransitionFaultSim::detect_mask.
DifferentialCounts run_differential(const Netlist& nl) {
    AtpgConfig podem_cfg;
    podem_cfg.engine = AtpgEngineKind::Podem;
    podem_cfg.podem_backtrack_limit = 100000;
    AtpgConfig sat_cfg;
    sat_cfg.engine = AtpgEngineKind::Sat;
    sat_cfg.sat_conflict_budget = 0;  // unlimited

    const auto podem = make_atpg_engine(nl, podem_cfg);
    const auto sat = make_atpg_engine(nl, sat_cfg);
    Prng rng(7);
    TransitionFaultSim sim(nl);

    DifferentialCounts counts;
    for (const TdfFault& fault : enumerate_tdf_faults(nl)) {
        const AtpgFaultResult rp = podem->generate(fault, rng);
        const AtpgFaultResult rs = sat->generate(fault, rng);
        if (rp.verdict == AtpgVerdict::Aborted ||
            rs.verdict == AtpgVerdict::Aborted) {
            ++counts.aborts;
            continue;
        }
        if (rp.verdict != rs.verdict) {
            ++counts.mismatches;
            ADD_FAILURE() << nl.name() << " gate " << fault.site.gate
                          << " pin " << static_cast<int>(fault.site.pin)
                          << " slow_rising " << fault.slow_rising
                          << ": podem=" << static_cast<int>(rp.verdict)
                          << " sat=" << static_cast<int>(rs.verdict);
            continue;
        }
        if (rs.verdict == AtpgVerdict::Testable) {
            ++counts.testable;
            std::vector<PatternPair> one{rs.pattern};
            const auto values = sim.evaluate(sim.pack(one, 0));
            if ((sim.detect_mask(fault, values) & 1ULL) == 0) {
                ++counts.bad_witnesses;
                ADD_FAILURE() << nl.name() << " gate " << fault.site.gate
                              << ": SAT witness does not detect the fault";
            }
        } else {
            ++counts.untestable;
        }
    }
    return counts;
}

TEST(SatAtpg, DifferentialAgreesOnEmbeddedCircuits) {
    for (const char* name : {"s27", "mini_adder", "mini_alu"}) {
        const DifferentialCounts c = run_differential(make_embedded_circuit(name));
        EXPECT_EQ(c.mismatches, 0) << name;
        EXPECT_EQ(c.bad_witnesses, 0) << name;
        EXPECT_EQ(c.aborts, 0) << name;
        EXPECT_GT(c.testable, 0) << name;
    }
}

TEST(SatAtpg, DifferentialAgreesOnParityTree) {
    const DifferentialCounts c = run_differential(make_parity_tree(4));
    EXPECT_EQ(c.mismatches, 0);
    EXPECT_EQ(c.bad_witnesses, 0);
    EXPECT_EQ(c.aborts, 0);
    EXPECT_GT(c.testable, 0);
}

TEST(SatAtpg, DifferentialAgreesOnGeneratedProfile) {
    // A generated paper profile with redundancy: both engines must
    // agree on a substantial untestable population, not just the easy
    // testable faults.
    const DifferentialCounts c = run_differential(generated_s9234());
    EXPECT_EQ(c.mismatches, 0);
    EXPECT_EQ(c.bad_witnesses, 0);
    EXPECT_EQ(c.aborts, 0);
    EXPECT_GT(c.testable, 0);
    EXPECT_GT(c.untestable, 0);
}

TEST(SatAtpg, ResolvesEveryPodemAbort) {
    // With a 5-backtrack limit PODEM gives up on hundreds of faults of
    // the generated s9234 profile.  The SAT engine (complete, unlimited
    // conflicts) must turn every abort into a definite verdict — the
    // headline property of the redesign.
    const Netlist nl = generated_s9234();
    AtpgConfig podem_cfg;
    podem_cfg.engine = AtpgEngineKind::Podem;
    podem_cfg.podem_backtrack_limit = 5;
    AtpgConfig sat_cfg;
    sat_cfg.engine = AtpgEngineKind::Sat;
    sat_cfg.sat_conflict_budget = 0;

    const auto podem = make_atpg_engine(nl, podem_cfg);
    const auto sat = make_atpg_engine(nl, sat_cfg);
    Prng rng(7);

    int podem_aborts = 0;
    int sat_resolved = 0;
    for (const TdfFault& fault : enumerate_tdf_faults(nl)) {
        if (podem->generate(fault, rng).verdict != AtpgVerdict::Aborted) continue;
        ++podem_aborts;
        const AtpgFaultResult rs = sat->generate(fault, rng);
        if (rs.verdict != AtpgVerdict::Aborted) ++sat_resolved;
    }
    EXPECT_GT(podem_aborts, 100);  // the limit actually bites
    EXPECT_EQ(sat_resolved, podem_aborts);
}

TEST(SatAtpg, AutoModeFallsBackToSat) {
    // Same setup as above through the Auto engine: no fault may end
    // Aborted, because SAT picks up everything PODEM drops.
    const Netlist nl = generated_s9234();
    AtpgConfig cfg;
    cfg.engine = AtpgEngineKind::Auto;
    cfg.podem_backtrack_limit = 5;
    cfg.sat_conflict_budget = 0;
    const auto engine = make_atpg_engine(nl, cfg);
    Prng rng(7);
    for (const TdfFault& fault : enumerate_tdf_faults(nl)) {
        EXPECT_NE(engine->generate(fault, rng).verdict, AtpgVerdict::Aborted);
    }
}

TEST(SatAtpg, EngineFactoryAndNames) {
    const Netlist nl = make_s27();
    for (const auto kind :
         {AtpgEngineKind::Podem, AtpgEngineKind::Sat, AtpgEngineKind::Auto}) {
        AtpgConfig cfg;
        cfg.engine = kind;
        const auto engine = make_atpg_engine(nl, cfg);
        ASSERT_NE(engine, nullptr);
        EXPECT_EQ(engine->name(), atpg_engine_kind_name(kind));
    }
    EXPECT_EQ(atpg_engine_kind_from_name("sat"), AtpgEngineKind::Sat);
    EXPECT_EQ(atpg_engine_kind_from_name("podem"), AtpgEngineKind::Podem);
    EXPECT_EQ(atpg_engine_kind_from_name("auto"), AtpgEngineKind::Auto);
    EXPECT_FALSE(atpg_engine_kind_from_name("dpll").has_value());
}

TEST(SatAtpg, ConflictBudgetAborts) {
    // A 1-conflict budget on a hard fault population must surface as
    // Aborted verdicts (never silently wrong answers); unlimited budget
    // resolves the same faults.
    const Netlist nl = generated_s9234();
    AtpgConfig tiny;
    tiny.engine = AtpgEngineKind::Sat;
    tiny.sat_conflict_budget = 1;
    AtpgConfig full;
    full.engine = AtpgEngineKind::Sat;
    full.sat_conflict_budget = 0;
    const auto engine_tiny = make_atpg_engine(nl, tiny);
    const auto engine_full = make_atpg_engine(nl, full);
    Prng rng(7);
    int aborted = 0;
    int checked = 0;
    for (const TdfFault& fault : enumerate_tdf_faults(nl)) {
        const AtpgFaultResult rt = engine_tiny->generate(fault, rng);
        if (rt.verdict != AtpgVerdict::Aborted) continue;
        ++aborted;
        if (checked < 16) {  // spot-check: full budget resolves them
            ++checked;
            EXPECT_NE(engine_full->generate(fault, rng).verdict,
                      AtpgVerdict::Aborted);
        }
    }
    EXPECT_GT(aborted, 0);
}

TEST(SatAtpg, InjectedBudgetFaultSurfacesAsAbort) {
    // FASTMON_FAULT_INJECT=solver.sat_budget forces the solver's
    // Unknown path; the engine must report Aborted for that fault and
    // keep answering correctly afterwards.
    const Netlist nl = make_s27();
    AtpgConfig cfg;
    cfg.engine = AtpgEngineKind::Sat;
    const auto engine = make_atpg_engine(nl, cfg);
    Prng rng(7);
    const auto faults = enumerate_tdf_faults(nl);
    ASSERT_FALSE(faults.empty());

    FaultInjector::global().reset();
    FaultInjector::global().arm("solver.sat_budget");
    const AtpgFaultResult tripped = engine->generate(faults[0], rng);
    FaultInjector::global().reset();
    EXPECT_EQ(tripped.verdict, AtpgVerdict::Aborted);

    const AtpgFaultResult clean = engine->generate(faults[0], rng);
    EXPECT_NE(clean.verdict, AtpgVerdict::Aborted);
}

TEST(SatAtpg, SolverReuseMatchesFreshSolvers) {
    // sat_restart_period=1 rebuilds the solver for every fault site;
    // the default keeps one incremental solver.  Verdicts must be
    // identical — learned clauses may only prune search, never change
    // answers.
    const Netlist nl = make_mini_alu();
    AtpgConfig keep;
    keep.engine = AtpgEngineKind::Sat;
    keep.sat_restart_period = 0;  // never rebuild
    AtpgConfig fresh;
    fresh.engine = AtpgEngineKind::Sat;
    fresh.sat_restart_period = 1;  // rebuild per site
    const auto engine_keep = make_atpg_engine(nl, keep);
    const auto engine_fresh = make_atpg_engine(nl, fresh);
    Prng rng(7);
    for (const TdfFault& fault : enumerate_tdf_faults(nl)) {
        EXPECT_EQ(engine_keep->generate(fault, rng).verdict,
                  engine_fresh->generate(fault, rng).verdict);
    }
}

}  // namespace
}  // namespace fastmon
