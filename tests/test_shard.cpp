// Shard artifacts and merging: round trips, content-checksum damage
// detection, fault-injected corruption, merge bit-identity against the
// single-process run at shard counts 1/2/4, associativity of the fold,
// and honest per-shard status for missing / corrupt / foreign shards.
#include "campaign/shard.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "netlist/iscas_data.hpp"
#include "util/fault_inject.hpp"

namespace fastmon {
namespace {

class ShardTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("fastmon_shard_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override {
        FaultInjector::global().reset();
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
    [[nodiscard]] std::string path(const std::string& name) const {
        return (dir_ / name).string();
    }

    [[nodiscard]] CampaignConfig config() const {
        CampaignConfig c;
        c.population = 24;
        c.seed = 11;
        c.model.defect.incidence = 0.3;
        c.num_threads = 1;
        return c;
    }

    /// Runs shard index/count and returns its artifact.
    [[nodiscard]] ShardResult run_shard(std::size_t index,
                                        std::size_t count) const {
        CampaignConfig c = config();
        c.shard_index = index;
        c.shard_count = count;
        const CampaignResult result = run_campaign(nl_, c);
        return make_shard_result(nl_, c, result);
    }

    /// Flips one digit of the payload half of the file at `p`.
    static void flip_digit(const std::string& p) {
        std::ifstream is(p, std::ios::binary);
        std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        is.close();
        for (std::size_t i = text.size() / 2; i < text.size(); ++i) {
            if (text[i] >= '0' && text[i] <= '8') {
                ++text[i];
                break;
            }
        }
        std::ofstream(p, std::ios::binary) << text;
    }

    Netlist nl_ = make_mini_alu();
    std::filesystem::path dir_;
};

TEST_F(ShardTest, ArtifactRoundTripPreservesEverything) {
    const ShardResult shard = run_shard(1, 2);
    EXPECT_TRUE(shard.complete());
    EXPECT_EQ(shard.range_begin, 12u);
    EXPECT_EQ(shard.range_end, 24u);

    std::string error;
    const auto back = ShardResult::from_json(shard.to_json(), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->fingerprint, shard.fingerprint);
    EXPECT_EQ(back->shard_index, shard.shard_index);
    EXPECT_EQ(back->shard_count, shard.shard_count);
    EXPECT_EQ(back->population, shard.population);
    EXPECT_EQ(back->outcomes, shard.outcomes);
    EXPECT_EQ(back->aggregate.dump(0), shard.aggregate.dump(0));
    EXPECT_EQ(back->campaign.dump(0), shard.campaign.dump(0));
    EXPECT_EQ(back->roll_latency_us, shard.roll_latency_us);
    EXPECT_EQ(back->first_alert_years, shard.first_alert_years);
    EXPECT_EQ(back->failure_years, shard.failure_years);
}

TEST_F(ShardTest, FileRoundTripAndMissingFile) {
    const ShardResult shard = run_shard(0, 2);
    ASSERT_TRUE(save_shard_result(path("s0.json"), shard));
    std::string error;
    const auto back = load_shard_result(path("s0.json"), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->outcomes, shard.outcomes);

    // Missing file: no artifact, no error message (caller decides).
    error.clear();
    EXPECT_FALSE(load_shard_result(path("absent.json"), &error));
    EXPECT_TRUE(error.empty());
}

TEST_F(ShardTest, ContentChecksumCatchesSingleFlippedDigit) {
    ASSERT_TRUE(save_shard_result(path("s.json"), run_shard(0, 2)));
    flip_digit(path("s.json"));
    std::string error;
    EXPECT_FALSE(load_shard_result(path("s.json"), &error));
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST_F(ShardTest, CorruptArtifactInjectionPointDamagesTheWrite) {
    FaultInjector::global().arm("shard.corrupt_artifact");
    ASSERT_TRUE(save_shard_result(path("bad.json"), run_shard(0, 2)));
    std::string error;
    EXPECT_FALSE(load_shard_result(path("bad.json"), &error));
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;

    // The injection trips once: the retry writes a clean artifact.
    ASSERT_TRUE(save_shard_result(path("good.json"), run_shard(0, 2)));
    EXPECT_TRUE(load_shard_result(path("good.json"), &error)) << error;
}

TEST_F(ShardTest, TamperedAggregateIsRejectedEvenWithFixedChecksum) {
    // An attacker (or a logic bug) that rewrites the aggregate AND
    // recomputes the checksum is still caught by the outcome
    // cross-check.
    Json doc = run_shard(0, 1).to_json();
    Json payload = *doc.find("payload");
    Json aggregate = *payload.find("aggregate");
    aggregate.set("failed", 9999);
    payload.set("aggregate", std::move(aggregate));
    doc.set("checksum",
            fingerprint_hex(checkpoint_fingerprint(payload.dump(0))));
    doc.set("payload", std::move(payload));
    std::string error;
    EXPECT_FALSE(ShardResult::from_json(doc, &error));
    EXPECT_NE(error.find("aggregate"), std::string::npos) << error;
}

TEST_F(ShardTest, MergedReportBitIdenticalAtShardCounts124) {
    const CampaignConfig plain = config();
    const Json reference = run_campaign(nl_, plain).to_json(plain);
    const std::string ref_campaign = reference.find("campaign")->dump(2);
    const std::string ref_aggregate = reference.find("aggregate")->dump(2);

    for (std::size_t count : {1u, 2u, 4u}) {
        std::vector<std::string> paths;
        for (std::size_t i = 0; i < count; ++i) {
            const std::string p =
                path("n" + std::to_string(count) + "_s" +
                     std::to_string(i) + ".json");
            ASSERT_TRUE(save_shard_result(p, run_shard(i, count)));
            paths.push_back(p);
        }
        const ShardMerge merged = merge_shard_results(paths);
        EXPECT_TRUE(merged.complete) << "shard count " << count;
        EXPECT_TRUE(merged.mergeable);
        EXPECT_EQ(merged.devices_merged, plain.population);
        EXPECT_STREQ(merged.status.overall(), "ok");
        EXPECT_EQ(merged.report.find("campaign")->dump(2), ref_campaign)
            << "shard count " << count;
        EXPECT_EQ(merged.report.find("aggregate")->dump(2), ref_aggregate)
            << "shard count " << count;
    }
}

TEST_F(ShardTest, MergeIsAssociative) {
    ShardResult a = run_shard(0, 3);
    ShardResult b = run_shard(1, 3);
    ShardResult c = run_shard(2, 3);

    // ((a + b) + c)
    ShardResult left = a;
    std::string error;
    ASSERT_TRUE(left.merge(b, &error)) << error;
    ASSERT_TRUE(left.merge(c, &error)) << error;
    // (a + (b + c)) — note b+c unions non-adjacent... b and c are
    // adjacent; exercise the sparse case with (a + c) + b too.
    ShardResult right = b;
    ASSERT_TRUE(right.merge(c, &error)) << error;
    ShardResult right_total = a;
    ASSERT_TRUE(right_total.merge(right, &error)) << error;
    ShardResult sparse = a;
    ASSERT_TRUE(sparse.merge(c, &error)) << error;  // hole at b's range
    EXPECT_FALSE(sparse.complete());
    ASSERT_TRUE(sparse.merge(b, &error)) << error;

    for (const ShardResult* m : {&right_total, &sparse}) {
        EXPECT_EQ(m->outcomes, left.outcomes);
        EXPECT_EQ(m->aggregate.dump(0), left.aggregate.dump(0));
        EXPECT_TRUE(m->complete());
        // Sketch bucket counts are associative (sum is FP-order
        // sensitive, so compare counts and quantiles, not bits).
        EXPECT_EQ(m->failure_years.count(), left.failure_years.count());
        EXPECT_EQ(m->failure_years.quantile(50.0),
                  left.failure_years.quantile(50.0));
        EXPECT_EQ(m->first_alert_years.count(),
                  left.first_alert_years.count());
    }

    // Overlap is rejected and leaves the target unchanged.
    ShardResult overlap = left;
    EXPECT_FALSE(overlap.merge(a, &error));
    EXPECT_NE(error.find("overlap"), std::string::npos);
    EXPECT_EQ(overlap.outcomes, left.outcomes);
}

TEST_F(ShardTest, MergeReportsMissingCorruptAndForeignShards) {
    // Shards 0..3 of this campaign; shard 1 vanishes, shard 2 is
    // bit-flipped, shard 3 is replaced by a different campaign's shard.
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < 4; ++i) {
        paths.push_back(path("m" + std::to_string(i) + ".json"));
        ASSERT_TRUE(save_shard_result(paths[i], run_shard(i, 4)));
    }
    std::filesystem::remove(paths[1]);
    flip_digit(paths[2]);
    {
        CampaignConfig other = config();
        other.seed = 99;  // different fingerprint
        other.shard_index = 3;
        other.shard_count = 4;
        const CampaignResult r = run_campaign(nl_, other);
        ASSERT_TRUE(
            save_shard_result(paths[3], make_shard_result(nl_, other, r)));
    }

    const ShardMerge merged = merge_shard_results(paths);
    ASSERT_EQ(merged.shards.size(), 4u);
    EXPECT_EQ(merged.shards[0].state, ShardState::Ok);
    EXPECT_EQ(merged.shards[1].state, ShardState::Missing);
    EXPECT_EQ(merged.shards[2].state, ShardState::Corrupt);
    EXPECT_EQ(merged.shards[3].state, ShardState::FingerprintMismatch);
    EXPECT_TRUE(merged.mergeable);
    EXPECT_FALSE(merged.complete);
    EXPECT_EQ(merged.devices_merged, 6u);  // shard 0 of 4 over 24
    EXPECT_STREQ(merged.status.overall(), "degraded");
    const PhaseStatus* validate = merged.status.find("merge_validate");
    ASSERT_NE(validate, nullptr);
    EXPECT_EQ(validate->outcome, PhaseOutcome::Degraded);
    EXPECT_NE(validate->detail.find("1 of 4"), std::string::npos);
    const PhaseStatus* aggregate = merged.status.find("merge_aggregate");
    ASSERT_NE(aggregate, nullptr);
    EXPECT_EQ(aggregate->outcome, PhaseOutcome::Degraded);
    // The degraded aggregate still exists and covers the survivor.
    EXPECT_NE(merged.report.find("aggregate"), nullptr);
}

TEST_F(ShardTest, DuplicateShardArtifactIsRejected) {
    ASSERT_TRUE(save_shard_result(path("d0.json"), run_shard(0, 2)));
    ASSERT_TRUE(save_shard_result(path("d1.json"), run_shard(1, 2)));
    const ShardMerge merged = merge_shard_results(
        {path("d0.json"), path("d0.json"), path("d1.json")});
    ASSERT_EQ(merged.shards.size(), 3u);
    EXPECT_EQ(merged.shards[0].state, ShardState::Ok);
    EXPECT_EQ(merged.shards[1].state, ShardState::Corrupt);
    EXPECT_NE(merged.shards[1].detail.find("duplicate"), std::string::npos);
    EXPECT_EQ(merged.shards[2].state, ShardState::Ok);
    EXPECT_EQ(merged.devices_merged, 24u);  // the dup was not double-counted
}

TEST_F(ShardTest, NoValidShardsFailsHonestly) {
    const ShardMerge merged =
        merge_shard_results({path("none0.json"), path("none1.json")});
    EXPECT_FALSE(merged.mergeable);
    EXPECT_FALSE(merged.complete);
    const PhaseStatus* validate = merged.status.find("merge_validate");
    ASSERT_NE(validate, nullptr);
    EXPECT_EQ(validate->outcome, PhaseOutcome::Failed);
    const PhaseStatus* aggregate = merged.status.find("merge_aggregate");
    ASSERT_NE(aggregate, nullptr);
    EXPECT_EQ(aggregate->outcome, PhaseOutcome::Skipped);
}

TEST(ShardDeviceRange, PartitionsThePopulationExactly) {
    for (const std::size_t population : {0u, 1u, 7u, 24u, 100u}) {
        for (const std::size_t count : {1u, 2u, 3u, 4u, 7u, 13u}) {
            std::size_t covered = 0;
            std::size_t prev_end = 0;
            for (std::size_t i = 0; i < count; ++i) {
                const auto [begin, end] =
                    shard_device_range(population, i, count);
                EXPECT_EQ(begin, prev_end);
                EXPECT_LE(end - begin,
                          population / count + 1);  // balanced
                covered += end - begin;
                prev_end = end;
            }
            EXPECT_EQ(covered, population);
            EXPECT_EQ(prev_end, population);
        }
    }
    // Degenerate coordinates are clamped to an empty range.
    const auto [b, e] = shard_device_range(10, 5, 4);
    EXPECT_EQ(b, e);
}

}  // namespace
}  // namespace fastmon
