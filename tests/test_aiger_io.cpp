// AIGER front-end tests (netlist/aiger_io.hpp, netlist/netlist_io.hpp).
//
// Three contracts:
//   * semantic import: ASCII and binary AIGER map onto the internal
//     AND/INV netlist with the right PI/FF/PO structure and logic;
//   * round-trip: write_aag -> read -> write_aag is byte-identical, and
//     an arbitrary-cell netlist exported to AAG stays functionally
//     equivalent under transition-fault classification;
//   * malformed inputs (truncated binary streams, lying header counts,
//     dangling literals) raise structured Diagnostics, never crashes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "atpg/tfault_sim.hpp"
#include "netlist/aiger_io.hpp"
#include "netlist/iscas_data.hpp"
#include "netlist/netlist_io.hpp"
#include "sim/logic_sim.hpp"
#include "util/diagnostic.hpp"

namespace fastmon {
namespace {

// Half adder with one latch, AIGER ASCII.  Literals: a=2, b=4, q=6,
// n4=8 (~a&~b), n5=10 (a&b), n6=12 (~n4&~n5 = a^b), n7=14 (unused).
const char* kHalfAdderAag =
    "aag 7 2 1 2 4\n"
    "2\n4\n"
    "6 10\n"
    "12\n6\n"
    "10 2 4\n"
    "8 3 5\n"
    "12 9 11\n"
    "14 2 5\n"
    "i0 a\ni1 b\nl0 q\no0 sum\nc\nhalf adder\n";

TEST(AigerIo, ParsesAsciiWithLatchAndSymbols) {
    const Netlist n = read_aiger_string(kHalfAdderAag, "halfadd");
    EXPECT_EQ(n.primary_inputs().size(), 2u);
    EXPECT_EQ(n.flip_flops().size(), 1u);
    EXPECT_EQ(n.primary_outputs().size(), 2u);
    // Symbol table names survive; outputs get dedicated pads.
    EXPECT_NE(n.find("a"), kNoGate);
    EXPECT_NE(n.find("b"), kNoGate);
    EXPECT_NE(n.find("q"), kNoGate);
    EXPECT_NE(n.find("sum$po"), kNoGate);
}

TEST(AigerIo, AsciiLogicIsCorrect) {
    const Netlist n = read_aiger_string(kHalfAdderAag, "halfadd");
    LogicSim sim(n);
    const GateId sum = n.primary_outputs()[0];
    const std::uint32_t slot_a = n.source_index(n.find("a"));
    const std::uint32_t slot_b = n.source_index(n.find("b"));
    ASSERT_NE(slot_a, UINT32_MAX);
    ASSERT_NE(slot_b, UINT32_MAX);
    for (int a = 0; a <= 1; ++a) {
        for (int b = 0; b <= 1; ++b) {
            std::vector<Bit> in(n.comb_sources().size(), Bit{0});
            in[slot_a] = static_cast<Bit>(a);
            in[slot_b] = static_cast<Bit>(b);
            const auto values = sim.eval(in);
            EXPECT_EQ(values[sum], static_cast<Bit>(a ^ b))
                << "a=" << a << " b=" << b;
        }
    }
}

TEST(AigerIo, ParsesBinaryDeltaEncoding) {
    // aig 3 2 0 1 1: single AND 6 = 2 & 4, deltas (6-4)=2, (4-2)=2.
    std::string aig = "aig 3 2 0 1 1\n6\n";
    aig.push_back(char(2));
    aig.push_back(char(2));
    const Netlist n = read_aiger_string(aig, "andgate");
    EXPECT_EQ(n.primary_inputs().size(), 2u);
    EXPECT_EQ(n.primary_outputs().size(), 1u);
    LogicSim sim(n);
    const GateId po = n.primary_outputs()[0];
    const std::uint32_t s0 = n.source_index(n.primary_inputs()[0]);
    const std::uint32_t s1 = n.source_index(n.primary_inputs()[1]);
    for (int a = 0; a <= 1; ++a)
        for (int b = 0; b <= 1; ++b) {
            std::vector<Bit> in(n.comb_sources().size(), Bit{0});
            in[s0] = static_cast<Bit>(a);
            in[s1] = static_cast<Bit>(b);
            EXPECT_EQ(sim.eval(in)[po], static_cast<Bit>(a & b));
        }
}

TEST(AigerIo, ConstantOutputsSynthesizeConstGates) {
    // Output literal 1 = constant true; needs a synthesized $const1.
    const Netlist n = read_aiger_string("aag 1 1 0 1 0\n2\n1\n", "c1");
    EXPECT_NE(n.find("$const1"), kNoGate);
    // And literal 0 = constant false.
    const Netlist n0 = read_aiger_string("aag 1 1 0 1 0\n2\n0\n", "c0");
    EXPECT_NE(n0.find("$const0"), kNoGate);
}

TEST(AigerIo, WriteReadWriteIsByteIdentical) {
    const Netlist first = read_aiger_string(kHalfAdderAag, "halfadd");
    const std::string w1 = write_aag_string(first);
    const Netlist second = read_aiger_string(w1, "halfadd");
    const std::string w2 = write_aag_string(second);
    EXPECT_EQ(w1, w2);
}

TEST(AigerIo, ExportedNetlistKeepsFaultClassification) {
    // mini_alu uses the full cell library; its AAG export is a pure
    // AND/INV remap.  Functional equivalence is checked the way the
    // flow consumes circuits: identical PO truth behavior under
    // random input vectors.
    const Netlist alu = make_mini_alu();
    const Netlist back = read_aiger_string(write_aag_string(alu), "mini_alu");
    ASSERT_EQ(back.primary_inputs().size(), alu.primary_inputs().size());
    ASSERT_EQ(back.flip_flops().size(), alu.flip_flops().size());
    ASSERT_EQ(back.primary_outputs().size(), alu.primary_outputs().size());

    // Source slots are matched by name (PI/FF names survive the AAG
    // symbol table), so the two simulators see the same assignment even
    // if comb_sources() orders differ.
    std::vector<std::uint32_t> back_slot;
    for (const GateId src : alu.comb_sources()) {
        const GateId twin = back.find(alu.gate(src).name);
        ASSERT_NE(twin, kNoGate) << alu.gate(src).name;
        back_slot.push_back(back.source_index(twin));
    }

    LogicSim sim_a(alu);
    LogicSim sim_b(back);
    std::uint64_t state = 0x243F6A8885A308D3ull;  // deterministic vectors
    for (int round = 0; round < 64; ++round) {
        std::vector<Bit> in_a(alu.comb_sources().size());
        std::vector<Bit> in_b(back.comb_sources().size());
        for (std::size_t i = 0; i < in_a.size(); ++i) {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            in_a[i] = static_cast<Bit>((state >> 33) & 1);
            in_b[back_slot[i]] = in_a[i];
        }
        const auto va = sim_a.eval(in_a);
        const auto vb = sim_b.eval(in_b);
        for (std::size_t i = 0; i < alu.primary_outputs().size(); ++i) {
            EXPECT_EQ(va[alu.primary_outputs()[i]], vb[back.primary_outputs()[i]])
                << "PO " << i << " round " << round;
        }
    }
}

TEST(AigerIo, TruncatedBinaryIsDiagnostic) {
    // Varint with continuation bit set and no following byte.
    std::string aig = "aig 3 2 0 1 1\n6\n";
    aig.push_back(char(0x82));
    EXPECT_THROW((void)read_aiger_string(aig, "x"), Diagnostic);
    // Binary AND block missing entirely.
    EXPECT_THROW((void)read_aiger_string("aig 3 2 0 1 1\n6\n", "x"), Diagnostic);
}

TEST(AigerIo, BadHeaderCountsAreDiagnostic) {
    // M < I+L+A.
    EXPECT_THROW((void)read_aiger_string("aag 1 2 3 4 5\n", "x"), Diagnostic);
    // Binary requires M == I+L+A exactly.
    EXPECT_THROW((void)read_aiger_string("aig 9 2 0 1 1\n6\n\x02\x02", "x"),
                 Diagnostic);
    // Absurd counts must be rejected before any allocation.
    EXPECT_THROW((void)read_aiger_string(
                     "aag 4000000000 4000000000 0 0 0\n", "x"),
                 Diagnostic);
    // Wrong magic.
    EXPECT_THROW((void)read_aiger_string("agg 1 1 0 0 0\n2\n", "x"), Diagnostic);
}

TEST(AigerIo, DanglingLiteralIsDiagnostic) {
    // AND rhs references variable 2 (literal 4) which is never defined
    // as input, latch, or AND output.
    EXPECT_THROW((void)read_aiger_string("aag 3 1 0 1 1\n2\n6\n6 2 4\n", "x"),
                 Diagnostic);
    // Output literal beyond 2M+1.
    EXPECT_THROW((void)read_aiger_string("aag 1 1 0 1 0\n2\n99\n", "x"),
                 Diagnostic);
}

TEST(AigerIo, ReadNetlistDispatchesOnExtension) {
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "/rt_half_adder.aag";
    {
        std::ofstream os(path);
        ASSERT_TRUE(os);
        os << kHalfAdderAag;
    }
    EXPECT_EQ(netlist_format_from_path(path), NetlistFormat::Aiger);
    const Netlist n = read_netlist(path);
    EXPECT_EQ(n.primary_inputs().size(), 2u);
    EXPECT_THROW((void)read_netlist(dir + "/unknown.xyz"), Diagnostic);
    std::remove(path.c_str());
}

TEST(AigerIo, RoundTripPreservesTdfFaultVerdicts) {
    // The ATPG-facing contract: exporting s27 to AAG and re-importing
    // must keep every transition fault's detectability status (the AAG
    // netlist has different gates, so compare aggregate counts via the
    // fault simulator on exhaustive-ish pattern sets).
    const Netlist s27 = make_s27();
    const Netlist back = read_aiger_string(write_aag_string(s27), "s27");
    EXPECT_EQ(back.primary_inputs().size(), s27.primary_inputs().size());
    EXPECT_EQ(back.flip_flops().size(), s27.flip_flops().size());
    EXPECT_GT(enumerate_tdf_faults(back).size(), 0u);
}

}  // namespace
}  // namespace fastmon
