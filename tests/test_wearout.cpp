// Multi-mechanism wear-out subsystem: mission profiles, mechanism
// stress rates, activity extraction, Weibull severity determinism, and
// the campaign-level differentials (legacy bit-identity with the
// constant-activity legacy-only registry; scalar/batched/full-STA
// bit-identity under a mission profile; resume across phase cycles).
#include "wearout/wearout.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "netlist/builder.hpp"
#include "netlist/iscas_data.hpp"
#include "util/diagnostic.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/subprocess.hpp"

namespace fastmon {
namespace {

// ---------------------------------------------------------------------
// Mission profiles

TEST(MissionProfile, BuiltinsAreWellFormed) {
    const auto builtins = builtin_mission_profiles();
    ASSERT_EQ(builtins.size(), 3u);
    EXPECT_EQ(builtins[0].name, "server_247");
    EXPECT_EQ(builtins[1].name, "automotive_thermal_cycling");
    EXPECT_EQ(builtins[2].name, "mobile_bursty");
    for (const MissionProfile& p : builtins) {
        EXPECT_TRUE(p.cycle) << p.name;
        // One-year schedules so "years deployed" keeps its meaning.
        EXPECT_NEAR(p.cycle_years(), 1.0, 1e-12) << p.name;
        for (const MissionPhase& phase : p.phases) {
            EXPECT_GT(phase.duration_years, 0.0) << p.name;
            EXPECT_GE(phase.op.duty_cycle, 0.0) << p.name;
            EXPECT_LE(phase.op.duty_cycle, 1.0) << p.name;
        }
        EXPECT_EQ(find_mission_profile(p.name), &p);
    }
    EXPECT_EQ(find_mission_profile("no_such_profile"), nullptr);
}

TEST(MissionProfile, DescribeListsEveryBuiltinAndPhase) {
    const std::string catalog = describe_mission_profiles();
    for (const MissionProfile& p : builtin_mission_profiles()) {
        EXPECT_NE(catalog.find(p.name), std::string::npos);
        for (const MissionPhase& phase : p.phases) {
            EXPECT_NE(catalog.find(phase.name), std::string::npos);
        }
    }
}

MissionProfile two_phase(bool cycle) {
    MissionProfile p;
    p.name = "test";
    p.cycle = cycle;
    p.phases = {MissionPhase{"hot", 0.25, OperatingPoint{85.0, 0.85, 1.0, 0.9}},
                MissionPhase{"cold", 0.75, OperatingPoint{30.0, 0.75, 1.0, 0.1}}};
    return p;
}

TEST(MissionProfile, EquivalentYearsMatchesBruteForceWalk) {
    const MissionProfile p = two_phase(true);
    const std::vector<double> rates{3.0, 0.25};
    for (double years : {0.1, 0.25, 0.8, 1.0, 2.3, 7.6, 15.0}) {
        // Brute force: integrate rate(at(t)) dt at a fine step.
        const double dt = 1e-5;
        double acc = 0.0;
        for (double t = 0.0; t < years; t += dt) {
            const double step = std::min(dt, years - t);
            acc += step * (p.at(t) == p.phases[0].op ? rates[0] : rates[1]);
        }
        EXPECT_NEAR(p.equivalent_years(years, rates), acc, 1e-3 * acc + 1e-9)
            << "years " << years;
    }
}

TEST(MissionProfile, UnitRatesReproduceWallClock) {
    const MissionProfile cycling = two_phase(true);
    const std::vector<double> unit{1.0, 1.0};
    for (double years : {0.5, 1.0, 4.75, 15.0}) {
        EXPECT_NEAR(cycling.equivalent_years(years, unit), years, 1e-12);
    }
    // Single non-cycling phase at unit rate: bitwise equality — the
    // foundation of the legacy differential below.
    MissionProfile hold;
    hold.name = "hold";
    hold.cycle = false;
    hold.phases = {MissionPhase{"ref", 100.0, OperatingPoint{}}};
    const std::vector<double> one{1.0};
    for (double years : {0.25, 3.75, 15.0}) {
        EXPECT_EQ(hold.equivalent_years(years, one), years);
    }
    EXPECT_EQ(hold.equivalent_years(0.0, one), 0.0);
    EXPECT_EQ(hold.equivalent_years(-2.0, one), 0.0);
}

TEST(MissionProfile, NonCyclingHoldsLastPhaseOpenEnded) {
    const MissionProfile p = two_phase(false);
    const std::vector<double> rates{2.0, 0.5};
    // Past the 1-year schedule the last phase holds: 0.25*2 + t-0.25
    // at rate 0.5 from there on.
    const double expected = 0.25 * 2.0 + (10.0 - 0.25) * 0.5;
    EXPECT_NEAR(p.equivalent_years(10.0, rates), expected, 1e-12);
    EXPECT_EQ(&p.at(5.0), &p.phases.back().op);
}

TEST(MissionProfile, AtWrapsCyclesAndBoundariesBelongToLaterPhase) {
    const MissionProfile p = two_phase(true);
    EXPECT_EQ(&p.at(0.0), &p.phases[0].op);
    EXPECT_EQ(&p.at(0.1), &p.phases[0].op);
    EXPECT_EQ(&p.at(0.25), &p.phases[1].op);   // boundary -> later phase
    EXPECT_EQ(&p.at(0.9), &p.phases[1].op);
    EXPECT_EQ(&p.at(1.1), &p.phases[0].op);    // wrapped
    EXPECT_EQ(&p.at(-3.0), &p.phases[0].op);   // clamped to t = 0
    MissionProfile empty;
    EXPECT_EQ(p.at(0.3).duty_cycle, 0.1);
    EXPECT_EQ(empty.at(2.0), OperatingPoint{});  // reference fallback
}

TEST(MissionProfile, LoadResolvesBuiltinsFilesAndRejectsGarbage) {
    EXPECT_EQ(load_mission_profile("server_247").name, "server_247");
    EXPECT_THROW(load_mission_profile("definitely_not_a_profile"),
                 Diagnostic);

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("fastmon_mission_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    const std::string good = (dir / "custom.json").string();
    {
        std::ofstream out(good);
        out << two_phase(false).to_json().dump(2);
    }
    const MissionProfile loaded = load_mission_profile(good);
    EXPECT_EQ(loaded, two_phase(false));

    const std::string bad = (dir / "bad.json").string();
    {
        std::ofstream out(bad);
        out << "{ not json";
    }
    EXPECT_THROW(load_mission_profile(bad), Diagnostic);
    const std::string wrong = (dir / "wrong.json").string();
    {
        std::ofstream out(wrong);
        out << "{\"name\": \"x\"}";  // parses but isn't a profile
    }
    EXPECT_THROW(load_mission_profile(wrong), Diagnostic);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Mechanism stress rates

TEST(Mechanism, NamesRoundTrip) {
    for (const MechanismKind kind :
         {MechanismKind::LegacyPowerLaw, MechanismKind::Nbti,
          MechanismKind::Hci, MechanismKind::Em, MechanismKind::Tddb}) {
        const auto back = mechanism_from_name(mechanism_name(kind));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(mechanism_from_name("bogus").has_value());
}

TEST(Mechanism, RateIsExactlyOneAtTheReferencePoint) {
    const OperatingPoint ref;
    for (const MechanismKind kind :
         {MechanismKind::LegacyPowerLaw, MechanismKind::Nbti,
          MechanismKind::Hci, MechanismKind::Em, MechanismKind::Tddb}) {
        const MechanismConfig cfg = MechanismConfig::defaults(kind);
        EXPECT_EQ(cfg.rate(ref, ref), 1.0) << mechanism_name(kind);
    }
}

TEST(Mechanism, ArrheniusAcceleratesHotMechanismsAndCoolsHci) {
    const OperatingPoint ref;
    OperatingPoint hot = ref;
    hot.temperature_c = 105.0;
    OperatingPoint cold = ref;
    cold.temperature_c = -20.0;
    for (const MechanismKind kind : {MechanismKind::Nbti, MechanismKind::Em,
                                     MechanismKind::Tddb}) {
        const MechanismConfig cfg = MechanismConfig::defaults(kind);
        EXPECT_GT(cfg.rate(hot, ref), 1.0) << mechanism_name(kind);
        EXPECT_LT(cfg.rate(cold, ref), 1.0) << mechanism_name(kind);
    }
    // Hot-carrier damage is anti-Arrhenius: worst when cold.
    const MechanismConfig hci = MechanismConfig::defaults(MechanismKind::Hci);
    EXPECT_LT(hci.rate(hot, ref), 1.0);
    EXPECT_GT(hci.rate(cold, ref), 1.0);
}

TEST(Mechanism, VoltageDutyAndFrequencyScaleAsDeclared) {
    const OperatingPoint ref;
    OperatingPoint overdrive = ref;
    overdrive.vdd = 0.90;
    const MechanismConfig nbti = MechanismConfig::defaults(MechanismKind::Nbti);
    EXPECT_NEAR(nbti.rate(overdrive, ref),
                std::exp(nbti.voltage_gamma * 0.10), 1e-12);

    OperatingPoint half_duty = ref;
    half_duty.duty_cycle = 0.5;
    EXPECT_DOUBLE_EQ(nbti.rate(half_duty, ref), 0.5);
    // The legacy knob responds to duty only.
    const MechanismConfig legacy =
        MechanismConfig::defaults(MechanismKind::LegacyPowerLaw);
    OperatingPoint extreme = half_duty;
    extreme.temperature_c = 125.0;
    extreme.vdd = 1.0;
    extreme.frequency_ghz = 3.0;
    EXPECT_DOUBLE_EQ(legacy.rate(extreme, ref), 0.5);

    OperatingPoint fast = ref;
    fast.frequency_ghz = 2.0;
    const MechanismConfig hci = MechanismConfig::defaults(MechanismKind::Hci);
    const MechanismConfig em = MechanismConfig::defaults(MechanismKind::Em);
    EXPECT_DOUBLE_EQ(hci.rate(fast, ref), 2.0);
    EXPECT_DOUBLE_EQ(em.rate(fast, ref), 2.0);
    // ...but switching frequency does not drive the static mechanisms.
    EXPECT_DOUBLE_EQ(nbti.rate(fast, ref), 1.0);
}

TEST(Mechanism, StressIntegralAnchoredAndGuarded) {
    const MechanismConfig nbti = MechanismConfig::defaults(MechanismKind::Nbti);
    EXPECT_EQ(nbti.stress_integral(0.0), 0.0);
    EXPECT_EQ(nbti.stress_integral(-4.0), 0.0);
    EXPECT_EQ(nbti.stress_integral(std::nan("")), 0.0);
    EXPECT_DOUBLE_EQ(nbti.stress_integral(nbti.t_ref_years), 1.0);
    EXPECT_GT(nbti.stress_integral(20.0), nbti.stress_integral(10.0));
}

TEST(Mechanism, StressKindSplitsStaticFromSwitching) {
    using K = MechanismKind;
    EXPECT_EQ(MechanismConfig::defaults(K::Nbti).stress_kind(),
              StressKind::Static);
    EXPECT_EQ(MechanismConfig::defaults(K::Tddb).stress_kind(),
              StressKind::Static);
    EXPECT_EQ(MechanismConfig::defaults(K::Hci).stress_kind(),
              StressKind::Toggle);
    EXPECT_EQ(MechanismConfig::defaults(K::Em).stress_kind(),
              StressKind::Toggle);
    EXPECT_EQ(MechanismConfig::defaults(K::LegacyPowerLaw).stress_kind(),
              StressKind::Toggle);
}

// ---------------------------------------------------------------------
// Activity extraction

TEST(Activity, InverterChainCountsOneTogglePerGate) {
    NetlistBuilder b("chain");
    b.input("a");
    b.inv("n1", "a");
    b.inv("n2", "n1");
    b.output("n2");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);

    ActivityPattern rising{{0}, {1}};
    const ActivityCounts counts =
        count_activity(nl, ann, std::vector<ActivityPattern>{rising});
    EXPECT_EQ(counts.num_pairs, 1u);
    // The rising input propagates one edge through both inverters.
    EXPECT_EQ(counts.toggles[nl.find("n1")], 1u);
    EXPECT_EQ(counts.toggles[nl.find("n2")], 1u);
    // Settled values: a = 1 -> n1 = 0 -> n2 = 1.
    EXPECT_EQ(counts.ones[nl.find("n1")], 0u);
    EXPECT_EQ(counts.ones[nl.find("n2")], 1u);

    ActivityPattern steady{{1}, {1}};
    const ActivityCounts still =
        count_activity(nl, ann, std::vector<ActivityPattern>{steady});
    EXPECT_EQ(still.toggles[nl.find("n1")], 0u);
    EXPECT_EQ(still.toggles[nl.find("n2")], 0u);
}

TEST(Activity, AndGateSettledOnesFollowTruthTable) {
    NetlistBuilder b("and2");
    b.input("a");
    b.input("b");
    b.and2("y", "a", "b");
    b.output("y");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    // Four pairs settling at (0,0), (0,1), (1,0), (1,1): y ends 1 once.
    std::vector<ActivityPattern> patterns;
    for (Bit a : {0, 1}) {
        for (Bit bbit : {0, 1}) {
            patterns.push_back(ActivityPattern{{0, 0}, {a, bbit}});
        }
    }
    const ActivityCounts counts = count_activity(nl, ann, patterns);
    EXPECT_EQ(counts.ones[nl.find("y")], 1u);
    EXPECT_EQ(counts.num_pairs, 4u);
}

TEST(Activity, ConstantModeIsAllOnes) {
    const Netlist nl = make_mini_alu();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    ActivityConfig cfg;
    cfg.mode = ActivityConfig::Mode::Constant;
    const ActivityProfile profile = extract_activity(nl, ann, cfg);
    ASSERT_EQ(profile.toggle_rate.size(), nl.size());
    for (GateId id = 0; id < nl.size(); ++id) {
        EXPECT_EQ(profile.toggle_rate[id], 1.0);
        EXPECT_EQ(profile.static_prob[id], 1.0);
    }
}

TEST(Activity, WaveformModeIsDeterministicAndMeanOne) {
    const Netlist nl = make_mini_alu();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    ActivityConfig cfg;
    cfg.num_pattern_pairs = 16;
    const ActivityProfile a = extract_activity(nl, ann, cfg);
    const ActivityProfile b = extract_activity(nl, ann, cfg);
    EXPECT_EQ(a.toggle_rate, b.toggle_rate);
    EXPECT_EQ(a.static_prob, b.static_prob);

    RunningStats toggles;
    RunningStats ones;
    for (GateId id = 0; id < nl.size(); ++id) {
        if (!is_combinational(nl.gate(id).type)) continue;
        EXPECT_GE(a.toggle_rate[id], 0.0);
        EXPECT_GE(a.static_prob[id], 0.0);
        toggles.add(a.toggle_rate[id]);
        ones.add(a.static_prob[id]);
    }
    EXPECT_NEAR(toggles.mean(), 1.0, 1e-9);
    EXPECT_NEAR(ones.mean(), 1.0, 1e-9);
    // Real circuits have non-uniform activity — the whole point.
    EXPECT_GT(toggles.stddev(), 0.01);

    ActivityConfig reseeded = cfg;
    reseeded.seed = 12345;
    const ActivityProfile c = extract_activity(nl, ann, reseeded);
    EXPECT_NE(a.toggle_rate, c.toggle_rate);
}

// ---------------------------------------------------------------------
// WearoutModel: severity draws and equivalent years

WearoutConfig enabled_config(const MissionProfile& mission) {
    WearoutConfig cfg;
    cfg.enabled = true;
    cfg.mission = mission;
    return cfg;
}

TEST(WearoutModel, WeibullScalesAreDeterministicMeanOneAndLegacyFree) {
    const Netlist nl = make_mini_alu();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    WearoutConfig cfg = enabled_config(*find_mission_profile("server_247"));
    cfg.activity.mode = ActivityConfig::Mode::Constant;
    const WearoutModel model(nl, ann, cfg);
    ASSERT_EQ(model.num_mechanisms(), 5u);
    EXPECT_EQ(model.mechanism(0).kind, MechanismKind::LegacyPowerLaw);

    std::vector<double> scales;
    std::vector<double> again;
    model.device_scales(0xFEEDULL, scales);
    model.device_scales(0xFEEDULL, again);
    EXPECT_EQ(scales, again);
    ASSERT_EQ(scales.size(), 5u);
    // The legacy mechanism takes no draw: its spread is the population
    // amplitude jitter, and enabling wear-out must not perturb it.
    EXPECT_EQ(scales[0], 1.0);

    std::vector<RunningStats> stats(5);
    for (std::uint64_t d = 0; d < 4000; ++d) {
        model.device_scales(Prng::stream(9, d).next_u64(), scales);
        for (std::size_t m = 0; m < 5; ++m) {
            EXPECT_GT(scales[m], 0.0);
            stats[m].add(scales[m]);
        }
    }
    for (std::size_t m = 1; m < 5; ++m) {
        EXPECT_NEAR(stats[m].mean(), 1.0, 0.05) << "mechanism " << m;
        EXPECT_GT(stats[m].stddev(), 0.1) << "mechanism " << m;
    }
}

TEST(WearoutModel, EquivalentYearsEmptyMissionIsWallClock) {
    const Netlist nl = make_mini_alu();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    WearoutConfig cfg;
    cfg.enabled = true;
    cfg.activity.mode = ActivityConfig::Mode::Constant;
    const WearoutModel model(nl, ann, cfg);
    for (std::size_t m = 0; m < model.num_mechanisms(); ++m) {
        EXPECT_EQ(model.equivalent_years(m, 7.25), 7.25);
        EXPECT_EQ(model.equivalent_years(m, 0.0), 0.0);
        EXPECT_EQ(model.equivalent_years(m, -1.0), 0.0);
    }
}

TEST(WearoutModel, HotMissionAcceleratesThermallyDrivenMechanisms) {
    const Netlist nl = make_mini_alu();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    WearoutConfig cfg =
        enabled_config(*find_mission_profile("automotive_thermal_cycling"));
    cfg.activity.mode = ActivityConfig::Mode::Constant;
    const WearoutModel model(nl, ann, cfg);
    // Mechanism 1 is NBTI in the default registry: the automotive
    // profile's hot phases more than offset its idle parking time...
    EXPECT_GT(model.equivalent_years(1, 10.0), 10.0);
    // ...while the duty-only legacy knob sees mostly parked time.
    EXPECT_LT(model.equivalent_years(0, 10.0), 10.0);
}

// ---------------------------------------------------------------------
// Campaign-level differentials

CampaignConfig campaign_config() {
    CampaignConfig config;
    config.population = 16;
    config.seed = 11;
    config.model.defect.incidence = 0.3;
    config.num_threads = 1;
    return config;
}

TEST(WearoutCampaign, ConstantActivityLegacyRegistryIsBitIdentical) {
    // The acceptance differential: wear-out enabled, but with only the
    // legacy mechanism, unit (constant) activity, and a single
    // non-cycling reference-condition phase covering the horizon, the
    // multi-mechanism fill must reproduce the legacy power-law path
    // bit-for-bit — same alerts, failure years, and screen scores.
    const Netlist nl = make_mini_alu();
    const CampaignConfig legacy = campaign_config();
    CampaignConfig wearout = campaign_config();
    wearout.wearout.enabled = true;
    wearout.wearout.mission.name = "reference_hold";
    wearout.wearout.mission.cycle = false;
    wearout.wearout.mission.phases = {
        MissionPhase{"ref", 100.0, OperatingPoint{}}};
    wearout.wearout.mechanisms = {
        MechanismConfig::defaults(MechanismKind::LegacyPowerLaw)};
    wearout.wearout.activity.mode = ActivityConfig::Mode::Constant;

    const CampaignResult a = run_campaign(nl, legacy);
    const CampaignResult b = run_campaign(nl, wearout);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        const DeviceOutcome& x = a.outcomes[i];
        const DeviceOutcome& y = b.outcomes[i];
        EXPECT_EQ(x.first_alert_years, y.first_alert_years) << i;
        EXPECT_EQ(x.failure_years, y.failure_years) << i;
        EXPECT_EQ(x.screen_score, y.screen_score) << i;
        EXPECT_EQ(x.margin_used_t0, y.margin_used_t0) << i;
        EXPECT_EQ(x.aging_amplitude, y.aging_amplitude) << i;
        // Attribution is the only new field: all-legacy by design.
        EXPECT_TRUE(x.dominant_mechanism.empty()) << i;
        EXPECT_EQ(y.dominant_mechanism, "legacy_powerlaw") << i;
    }
    EXPECT_EQ(a.aggregate.classification.roc_auc,
              b.aggregate.classification.roc_auc);
    EXPECT_EQ(a.aggregate.failed, b.aggregate.failed);
    EXPECT_TRUE(a.aggregate.failed_by_mechanism.empty());
}

TEST(WearoutCampaign, MissionWidthsAndFullStaAreBitIdentical) {
    const Netlist nl = make_mini_alu();
    CampaignConfig scalar = campaign_config();
    scalar.wearout.enabled = true;
    scalar.wearout.mission =
        *find_mission_profile("automotive_thermal_cycling");
    scalar.batch_width = 1;
    const CampaignResult reference = run_campaign(nl, scalar);
    const Json jref = reference.to_json(scalar);

    CampaignConfig batched = scalar;
    batched.batch_width = 0;  // compiled width
    CampaignConfig full = scalar;
    full.full_sta = true;
    for (const CampaignConfig* config : {&batched, &full}) {
        const CampaignResult result = run_campaign(nl, *config);
        EXPECT_EQ(result.outcomes, reference.outcomes);
        const Json j = result.to_json(*config);
        for (const char* block : {"campaign", "aggregate"}) {
            ASSERT_NE(j.find(block), nullptr);
            EXPECT_EQ(j.find(block)->dump(2), jref.find(block)->dump(2));
        }
    }
}

TEST(WearoutCampaign, AttributionIsCompleteAndAggregated) {
    const Netlist nl = make_mini_alu();
    CampaignConfig config = campaign_config();
    config.population = 32;
    config.wearout.enabled = true;
    config.wearout.mission = *find_mission_profile("server_247");
    const CampaignResult result = run_campaign(nl, config);
    ASSERT_EQ(result.outcomes.size(), config.population);
    for (const DeviceOutcome& out : result.outcomes) {
        EXPECT_FALSE(out.dominant_mechanism.empty()) << out.index;
        EXPECT_GT(out.dominant_share, 0.0) << out.index;
        EXPECT_LE(out.dominant_share, 1.0 + 1e-12) << out.index;
        EXPECT_TRUE(mechanism_from_name(out.dominant_mechanism).has_value())
            << out.dominant_mechanism;
    }
    std::size_t counted = 0;
    for (const auto& [name, count] : result.aggregate.failed_by_mechanism) {
        counted += count;
    }
    for (const auto& [name, count] : result.aggregate.survived_by_mechanism) {
        counted += count;
    }
    EXPECT_EQ(counted, config.population);
}

TEST(WearoutCampaign, MissionJoinsTheCanonicalFingerprint) {
    const Netlist nl = make_mini_alu();
    const CampaignConfig legacy = campaign_config();
    const std::string base = campaign_canonical(nl, legacy);
    EXPECT_EQ(base.find("wearout"), std::string::npos);

    CampaignConfig server = campaign_config();
    server.wearout.enabled = true;
    server.wearout.mission = *find_mission_profile("server_247");
    const std::string with_server = campaign_canonical(nl, server);
    EXPECT_NE(with_server.find("wearout"), std::string::npos);
    EXPECT_NE(with_server, base);

    CampaignConfig mobile = server;
    mobile.wearout.mission = *find_mission_profile("mobile_bursty");
    EXPECT_NE(campaign_canonical(nl, mobile), with_server);
}

TEST(WearoutCampaign, ResumeAcrossPhaseCyclesIsBitIdentical) {
    // Kill/resume under a mission profile: the checkpoint prefix ends
    // mid-population while devices span many profile cycles; the
    // resumed run must converge to the uninterrupted aggregate.
    const Netlist nl = make_mini_alu();
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("fastmon_wearout_resume_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    const std::string ckpt = (dir / "mission.json").string();

    CampaignConfig plain = campaign_config();
    plain.population = 20;
    plain.wearout.enabled = true;
    plain.wearout.mission =
        *find_mission_profile("automotive_thermal_cycling");
    const CampaignResult reference = run_campaign(nl, plain);

    CampaignConfig ckpt_config = plain;
    ckpt_config.checkpoint_path = ckpt;
    ckpt_config.checkpoint_every = 6;
    const CampaignResult full = run_campaign(nl, ckpt_config);
    EXPECT_GE(full.checkpoints_written, 1u);
    std::string error;
    auto snapshot = load_checkpoint(ckpt, &error);
    ASSERT_TRUE(snapshot.has_value()) << error;
    ASSERT_EQ(snapshot->outcomes.size(), ckpt_config.population);
    snapshot->outcomes.resize(7);
    ASSERT_TRUE(save_checkpoint(ckpt, *snapshot));

    CampaignConfig resumed_config = ckpt_config;
    resumed_config.resume = true;
    const CampaignResult resumed = run_campaign(nl, resumed_config);
    EXPECT_EQ(resumed.devices_resumed, 7u);
    EXPECT_EQ(resumed.outcomes, reference.outcomes);
    EXPECT_EQ(resumed.to_json(resumed_config).find("aggregate")->dump(2),
              reference.to_json(plain).find("aggregate")->dump(2));

    // A checkpoint written under one mission must not resume another:
    // the fingerprint differs, so the run degrades to a fresh start.
    CampaignConfig other_mission = resumed_config;
    other_mission.wearout.mission = *find_mission_profile("server_247");
    const CampaignResult fresh = run_campaign(nl, other_mission);
    EXPECT_EQ(fresh.devices_resumed, 0u);
    std::filesystem::remove_all(dir);
}

TEST(WearoutCampaign, ProfilesSeparateFailureDistributions) {
    // Two built-ins must disagree measurably — the bench gate asserts
    // the same on the demo circuit with a larger population.
    const Netlist nl = make_mini_alu();
    CampaignConfig hot = campaign_config();
    hot.population = 48;
    hot.model.defect.incidence = 0.0;  // pure wear-out comparison
    hot.wearout.enabled = true;
    hot.wearout.mission = *find_mission_profile("server_247");
    CampaignConfig cool = hot;
    cool.wearout.mission = *find_mission_profile("mobile_bursty");

    const CampaignResult a = run_campaign(nl, hot);
    const CampaignResult b = run_campaign(nl, cool);
    ASSERT_GT(a.aggregate.wearout_failure_years.count, 0u);
    // The mostly-idle mobile profile fails later (or less) than 24/7
    // server deployment.
    if (b.aggregate.wearout_failure_years.count > 0) {
        EXPECT_GT(b.aggregate.wearout_failure_years.p50,
                  a.aggregate.wearout_failure_years.p50 + 0.5);
    } else {
        EXPECT_LT(b.aggregate.failed, a.aggregate.failed);
    }
}

TEST(WearoutCampaign, ReportCarriesWearoutBlockOnlyWhenEnabled) {
    const Netlist nl = make_mini_alu();
    const CampaignConfig legacy = campaign_config();
    const CampaignResult off = run_campaign(nl, legacy);
    const Json joff = off.to_json(legacy);
    ASSERT_NE(joff.find("campaign"), nullptr);
    EXPECT_EQ(joff.find("campaign")->find("wearout"), nullptr);

    CampaignConfig mission = campaign_config();
    mission.wearout.enabled = true;
    mission.wearout.mission = *find_mission_profile("mobile_bursty");
    const CampaignResult on = run_campaign(nl, mission);
    const Json jon = on.to_json(mission);
    const Json* block = jon.find("campaign")->find("wearout");
    ASSERT_NE(block, nullptr);
    ASSERT_NE(block->find("mission"), nullptr);
    EXPECT_EQ(block->find("mission")->find("name")->as_string(),
              "mobile_bursty");
    ASSERT_NE(block->find("mechanisms"), nullptr);
    EXPECT_EQ(block->find("mechanisms")->as_array().size(), 5u);
}

TEST(WearoutCli, ListProfilesPrintsTheCatalogAndExitsClean) {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("fastmon_wearout_cli_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    const std::string log = (dir / "list.txt").string();
    SpawnOptions options;
    options.output_path = log;
    auto child = Subprocess::spawn({FASTMON_CAMPAIGN_BIN, "--list-profiles"},
                                   options);
    ASSERT_TRUE(child.has_value());
    EXPECT_EQ(child->exit_code(), 0);
    std::ifstream in(log);
    const std::string out{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
    for (const MissionProfile& p : builtin_mission_profiles()) {
        EXPECT_NE(out.find(p.name), std::string::npos) << out;
        for (const MissionPhase& phase : p.phases) {
            EXPECT_NE(out.find(phase.name), std::string::npos) << out;
        }
    }
    // An unknown profile spec dies with a diagnostic, not a crash.
    auto bad = Subprocess::spawn(
        {FASTMON_CAMPAIGN_BIN, "--circuit", "demo_pipeline.bench",
         "--mission-profile", "not_a_profile", "--quiet"},
        options);
    ASSERT_TRUE(bad.has_value());
    EXPECT_EQ(bad->exit_code(), 2);
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fastmon
