#include "schedule/scan.hpp"

#include <gtest/gtest.h>

#include "netlist/iscas_data.hpp"
#include "netlist/structures.hpp"
#include "timing/sta_engine.hpp"

namespace fastmon {
namespace {

MonitorPlacement placement_for(const Netlist& nl, double fraction) {
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    return place_monitors(nl, sta, fraction, paper_delay_fractions());
}

TEST(Scan, BalancedPartitionCoversAllFlipFlops) {
    const Netlist nl = make_counter(12);
    const MonitorPlacement p = placement_for(nl, 0.0);
    const ScanChains sc = build_scan_chains(nl, p, 3);
    EXPECT_EQ(sc.num_chains(), 3u);
    std::size_t total = 0;
    for (const auto& chain : sc.chains) {
        total += chain.size();
        EXPECT_EQ(chain.size(), 4u);  // 12 FFs balanced over 3 chains
    }
    EXPECT_EQ(total, nl.flip_flops().size());
    EXPECT_EQ(sc.shift_cycles(), 4u);
    EXPECT_EQ(sc.total_cells(), 12u);
}

TEST(Scan, MonitorsStitchExtraCells) {
    const Netlist nl = make_counter(8);
    const MonitorPlacement all = placement_for(nl, 1.0);
    const ScanChains sc = build_scan_chains(nl, all, 2);
    // Every FF monitored: +2 cells each.
    EXPECT_EQ(sc.total_cells(), 8u + 16u);
    EXPECT_EQ(sc.shift_cycles(), 4u + 8u);
    const MonitorPlacement none = placement_for(nl, 0.0);
    const ScanChains sc0 = build_scan_chains(nl, none, 2);
    EXPECT_LT(sc0.shift_cycles(), sc.shift_cycles());
}

TEST(Scan, RejectsZeroChains) {
    const Netlist nl = make_s27();
    const MonitorPlacement p = placement_for(nl, 0.25);
    EXPECT_THROW(build_scan_chains(nl, p, 0), std::invalid_argument);
}

TEST(Scan, MoreChainsShortenShift) {
    const Netlist nl = make_lfsr(16, maximal_lfsr_taps(16));
    const MonitorPlacement p = placement_for(nl, 0.25);
    const std::size_t s1 = build_scan_chains(nl, p, 1).shift_cycles();
    const std::size_t s4 = build_scan_chains(nl, p, 4).shift_cycles();
    EXPECT_GT(s1, s4);
    EXPECT_GE(s1, nl.flip_flops().size());
}

TEST(ScanTestTimeModel, RelockStillDominatesSmallSchedules) {
    const Netlist nl = make_counter(16);
    const MonitorPlacement p = placement_for(nl, 0.25);
    const ScanChains sc = build_scan_chains(nl, p, 2);
    const ScanTestTimeModel model;
    TestSchedule few;
    few.periods = {100.0};
    few.entries.resize(50);
    TestSchedule many_freqs;
    many_freqs.periods = {100.0, 110.0, 120.0, 130.0};
    many_freqs.entries.resize(50);
    EXPECT_LT(model.cycles(few, sc), model.cycles(many_freqs, sc));
}

TEST(ScanTestTimeModel, OptimizedBeatsNaive) {
    const Netlist nl = make_counter(16);
    const MonitorPlacement p = placement_for(nl, 0.25);
    const ScanChains sc = build_scan_chains(nl, p, 2);
    const ScanTestTimeModel model;
    TestSchedule opt;
    opt.periods = {100.0, 120.0};
    opt.entries.resize(80);
    // Naive: 2 frequencies x 100 patterns x 5 configs = 1000 shifts.
    EXPECT_LT(model.cycles(opt, sc), model.naive_cycles(2, 100, 5, sc));
}

}  // namespace
}  // namespace fastmon
