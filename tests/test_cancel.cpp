// Resilience primitives: CancelToken/deadline, the fault injector, the
// unified parser Diagnostic, and atomic artifact writes.
#include "util/cancel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/atomic_file.hpp"
#include "util/diagnostic.hpp"
#include "util/fault_inject.hpp"

namespace fastmon {
namespace {

/// Every test in this file touches process-wide singletons; leave them
/// pristine for the rest of the suite.
class CancelTest : public ::testing::Test {
protected:
    void SetUp() override {
        CancelToken::global().reset();
        FaultInjector::global().reset();
    }
    void TearDown() override {
        CancelToken::global().reset();
        FaultInjector::global().reset();
    }
};

TEST_F(CancelTest, TokenStartsClear) {
    EXPECT_FALSE(CancelToken::global().cancelled());
    EXPECT_EQ(CancelToken::global().cause(), CancelCause::None);
    EXPECT_NO_THROW(CancelToken::global().throw_if_cancelled());
}

TEST_F(CancelTest, FirstCauseWins) {
    CancelToken& token = CancelToken::global();
    token.cancel(CancelCause::Deadline);
    token.cancel(CancelCause::Signal);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.cause(), CancelCause::Deadline);
}

TEST_F(CancelTest, ThrowIfCancelledCarriesCause) {
    CancelToken& token = CancelToken::global();
    token.cancel(CancelCause::Test);
    try {
        token.throw_if_cancelled();
        FAIL() << "expected CancelledError";
    } catch (const CancelledError& e) {
        EXPECT_EQ(e.cause(), CancelCause::Test);
        EXPECT_NE(std::string(e.what()).find("test"), std::string::npos);
    }
}

TEST_F(CancelTest, CancelledErrorIsRuntimeError) {
    CancelToken::global().cancel(CancelCause::Test);
    // Untouched call sites that catch std::runtime_error keep working.
    EXPECT_THROW(CancelToken::global().throw_if_cancelled(),
                 std::runtime_error);
}

TEST_F(CancelTest, DeadlineWatchdogFires) {
    CancelToken& token = CancelToken::global();
    token.arm_deadline(0.05);
    EXPECT_TRUE(token.deadline_armed());
    EXPECT_FALSE(token.cancelled());
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!token.cancelled() &&
           std::chrono::steady_clock::now() < give_up) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.cause(), CancelCause::Deadline);
}

TEST_F(CancelTest, DisarmedDeadlineDoesNotFire) {
    CancelToken& token = CancelToken::global();
    token.arm_deadline(0.05);
    token.arm_deadline(0.0);  // disarm
    EXPECT_FALSE(token.deadline_armed());
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_FALSE(token.cancelled());
}

TEST_F(CancelTest, CauseNames) {
    EXPECT_STREQ(cancel_cause_name(CancelCause::None), "none");
    EXPECT_STREQ(cancel_cause_name(CancelCause::Deadline), "deadline");
    EXPECT_STREQ(cancel_cause_name(CancelCause::Signal), "signal");
    EXPECT_STREQ(cancel_cause_name(CancelCause::Test), "test");
}

// --- fault injector ---

TEST_F(CancelTest, FireThrowsOnArmedHit) {
    FaultInjector& inj = FaultInjector::global();
    inj.arm("parser.bench");
    EXPECT_TRUE(inj.armed("parser.bench"));
    try {
        inj.fire("parser.bench");
        FAIL() << "expected InjectedFault";
    } catch (const InjectedFault& e) {
        EXPECT_EQ(e.point(), "parser.bench");
    }
    // One-shot: the same point does not fire twice.
    EXPECT_NO_THROW(inj.fire("parser.bench"));
    // Unarmed points never fire.
    EXPECT_NO_THROW(inj.fire("parser.verilog"));
}

TEST_F(CancelTest, FireHonorsHitCount) {
    FaultInjector& inj = FaultInjector::global();
    inj.arm("pool.task", 3);
    EXPECT_NO_THROW(inj.fire("pool.task"));
    EXPECT_NO_THROW(inj.fire("pool.task"));
    EXPECT_THROW(inj.fire("pool.task"), InjectedFault);
}

TEST_F(CancelTest, TripReportsOnceWithoutThrowing) {
    FaultInjector& inj = FaultInjector::global();
    inj.arm("solver.budget", 2);
    EXPECT_FALSE(inj.trip("solver.budget"));
    EXPECT_TRUE(inj.trip("solver.budget"));
    EXPECT_FALSE(inj.trip("solver.budget"));
}

TEST_F(CancelTest, ArmSpecParsesCommaListAndHitCounts) {
    FaultInjector& inj = FaultInjector::global();
    EXPECT_TRUE(inj.arm_spec("parser.sdf,pool.task@2"));
    EXPECT_TRUE(inj.armed("parser.sdf"));
    EXPECT_TRUE(inj.armed("pool.task"));
    EXPECT_NO_THROW(inj.fire("pool.task"));
    EXPECT_THROW(inj.fire("pool.task"), InjectedFault);
}

TEST_F(CancelTest, ArmSpecRejectsMalformedElements) {
    FaultInjector& inj = FaultInjector::global();
    EXPECT_FALSE(inj.arm_spec("parser.bench,bad@notanumber"));
    // Well-formed elements before the bad one are still armed.
    EXPECT_TRUE(inj.armed("parser.bench"));
    EXPECT_FALSE(inj.armed("bad"));
    EXPECT_FALSE(inj.arm_spec("@3"));
}

// --- diagnostics ---

TEST_F(CancelTest, DiagnosticFormatsCompilerStyle) {
    const Diagnostic d("bench", "c17.bench", 12, 3, "unknown gate type",
                       "G1 = FOO(G2)");
    EXPECT_STREQ(d.what(),
                 "c17.bench:12:3: bench parse error: unknown gate type\n"
                 "  G1 = FOO(G2)");
    EXPECT_EQ(d.source(), "bench");
    EXPECT_EQ(d.file(), "c17.bench");
    EXPECT_EQ(d.line(), 12u);
    EXPECT_EQ(d.column(), 3u);
    EXPECT_EQ(d.message(), "unknown gate type");
}

TEST_F(CancelTest, DiagnosticElidesUnknownParts) {
    const Diagnostic no_file("pattern", "", 2, 0, "invalid bit", "01x0");
    EXPECT_STREQ(no_file.what(),
                 "line 2: pattern parse error: invalid bit\n  01x0");
    const Diagnostic bare("verilog", "", 0, 0, "cannot open file", "");
    EXPECT_STREQ(bare.what(), "verilog parse error: cannot open file");
}

TEST_F(CancelTest, DiagnosticIsRuntimeError) {
    // All parser call sites that catch std::runtime_error still work.
    EXPECT_THROW(throw Diagnostic("sdf", "", 1, 0, "boom", ""),
                 std::runtime_error);
}

TEST_F(CancelTest, DiagnosticToJsonOmitsEmptyFields) {
    const Json j = Diagnostic("json", "", 4, 7, "bad token", "").to_json();
    EXPECT_NE(j.find("source"), nullptr);
    EXPECT_NE(j.find("line"), nullptr);
    EXPECT_NE(j.find("column"), nullptr);
    EXPECT_EQ(j.find("file"), nullptr);
    EXPECT_EQ(j.find("excerpt"), nullptr);
}

TEST_F(CancelTest, ParseJsonOrThrowReportsLocation) {
    try {
        parse_json_or_throw("{\n  \"a\": 1,\n  \"b\": oops\n}", "m.json");
        FAIL() << "expected Diagnostic";
    } catch (const Diagnostic& d) {
        EXPECT_EQ(d.source(), "json");
        EXPECT_EQ(d.file(), "m.json");
        EXPECT_EQ(d.line(), 3u);
        EXPECT_NE(d.excerpt().find("oops"), std::string::npos);
    }
    EXPECT_EQ(parse_json_or_throw("{\"a\": 1}").find("a")->as_number(), 1.0);
}

// --- atomic artifact writes ---

TEST_F(CancelTest, AtomicWriteReplacesAndCleansUp) {
    const std::string path = "test_atomic_write.tmp";
    ASSERT_TRUE(atomic_write_file(path, "first\n"));
    ASSERT_TRUE(atomic_write_file(path, "second\n"));
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "second\n");
    // No .partial temp file left behind.
    EXPECT_FALSE(
        std::ifstream(path + std::string(kPartialSuffix)).good());
    std::remove(path.c_str());
}

TEST_F(CancelTest, AtomicWriteFailsCleanlyOnBadPath) {
    EXPECT_FALSE(
        atomic_write_file("no_such_dir_xyz/artifact.json", "data"));
}

}  // namespace
}  // namespace fastmon
