// Differential test of the waveform simulator against an independent
// reference implementation.
//
// WaveSim::eval_gate implements the industry (SDF/Verilog) event
// semantics: on an input change the gate is evaluated and the output
// event scheduled after the *causing pin's* delay, preempting pending
// events.  With one direction-independent delay per gate (all pins
// equal, rise == fall) and the inertial filter off, that machine is
// provably equivalent to pure transport delay:
//
//     out(t) = f(inputs(t - d))
//
// The reference computes each gate's waveform by *sampling* that
// defining equation at every candidate event time, with none of the
// production algorithm's machinery (grouping, preemption stacks).
// Any divergence under this contract is a simulator bug.  (With
// distinct per-pin delays the two abstractions legitimately differ;
// the production simulator follows the causing-pin model.)
#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/generator.hpp"
#include "sim/wave_sim.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

/// One direction-independent delay per gate (all arcs equal).
DelayAnnotation symmetric_delays(const Netlist& nl, std::uint64_t seed) {
    DelayAnnotation ann = DelayAnnotation::nominal(nl);
    Prng rng(seed);
    for (GateId id = 0; id < nl.size(); ++id) {
        const Gate& g = nl.gate(id);
        if (!is_combinational(g.type)) continue;
        const Time d = rng.uniform(5.0, 40.0);
        for (std::uint32_t p = 0; p < g.fanin.size(); ++p) {
            ann.set_arc(id, p, PinDelay{d, d});
        }
    }
    return ann;
}

/// Reference: sample out(t) = f(in_i(t - d_i)) at all candidate times.
std::vector<Waveform> reference_simulate(const Netlist& nl,
                                         const DelayAnnotation& ann,
                                         std::span<const Bit> v1,
                                         std::span<const Bit> v2) {
    std::vector<Waveform> waves(nl.size(), Waveform::constant(false));
    for (GateId id : nl.topo_order()) {
        const Gate& g = nl.gate(id);
        const std::uint32_t src = nl.source_index(id);
        if (src != std::numeric_limits<std::uint32_t>::max()) {
            waves[id] = v1[src] == v2[src]
                            ? Waveform::constant(v1[src] != 0)
                            : Waveform::step(v1[src] != 0, 0.0);
            continue;
        }
        // Candidate output event times: every input transition shifted
        // by its pin delay.
        std::vector<Time> candidates;
        std::vector<Time> pin_delay(g.fanin.size());
        for (std::uint32_t p = 0; p < g.fanin.size(); ++p) {
            pin_delay[p] = ann.arc(id, p).rise;  // rise == fall
            for (Time t : waves[g.fanin[p]].transitions()) {
                candidates.push_back(t + pin_delay[p]);
            }
        }
        std::sort(candidates.begin(), candidates.end());
        // Initial value from the defining equation at t = -inf.
        bool ins[8];
        for (std::uint32_t p = 0; p < g.fanin.size(); ++p) {
            ins[p] = waves[g.fanin[p]].initial();
        }
        const bool initial =
            g.type == CellType::Output
                ? ins[0]
                : eval_cell(g.type,
                            std::span<const bool>(ins, g.fanin.size()));
        std::vector<std::pair<Time, bool>> events;
        for (Time t : candidates) {
            for (std::uint32_t p = 0; p < g.fanin.size(); ++p) {
                // Sample just after the candidate instant.
                ins[p] = waves[g.fanin[p]].value_at(t - pin_delay[p]);
            }
            const bool v =
                g.type == CellType::Output
                    ? ins[0]
                    : eval_cell(g.type,
                                std::span<const bool>(ins, g.fanin.size()));
            events.emplace_back(t, v);
        }
        waves[id] = Waveform::from_events(initial, events);
    }
    return waves;
}

class WaveSimReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaveSimReference, TransportDelaySemanticsMatch) {
    GeneratorConfig gc;
    gc.name = "ref_gen";
    gc.n_gates = 180;
    gc.n_ffs = 18;
    gc.n_inputs = 8;
    gc.n_outputs = 8;
    gc.depth = 9;
    gc.spread = 0.5;
    gc.seed = GetParam() + 900;
    const Netlist nl = generate_circuit(gc);
    const DelayAnnotation ann = symmetric_delays(nl, GetParam() * 37);
    WaveSimConfig cfg;
    cfg.inertial_fraction = 0.0;  // pure transport delay
    const WaveSim sim(nl, ann, cfg);

    Prng rng(GetParam() * 101 + 9);
    const std::size_t n = nl.comb_sources().size();
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<Bit> v1(n);
        std::vector<Bit> v2(n);
        for (std::size_t s = 0; s < n; ++s) {
            v1[s] = rng.chance(0.5) ? 1 : 0;
            v2[s] = rng.chance(0.5) ? 1 : 0;
        }
        const auto got = sim.simulate(v1, v2);
        const auto expect = reference_simulate(nl, ann, v1, v2);
        for (GateId id = 0; id < nl.size(); ++id) {
            ASSERT_EQ(got[id].initial(), expect[id].initial())
                << nl.gate(id).name << " trial " << trial;
            ASSERT_EQ(got[id].num_transitions(), expect[id].num_transitions())
                << nl.gate(id).name << " trial " << trial << "\n got "
                << got[id].num_transitions() << " transitions, expected "
                << expect[id].num_transitions();
            for (std::size_t k = 0; k < got[id].num_transitions(); ++k) {
                ASSERT_NEAR(got[id].transitions()[k],
                            expect[id].transitions()[k], 1e-6)
                    << nl.gate(id).name << " transition " << k;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaveSimReference,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace fastmon
