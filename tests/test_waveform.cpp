#include "sim/waveform.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace fastmon {
namespace {

TEST(Waveform, ConstantAndStep) {
    const Waveform c1 = Waveform::constant(true);
    EXPECT_TRUE(c1.initial());
    EXPECT_TRUE(c1.final());
    EXPECT_TRUE(c1.is_constant());
    EXPECT_TRUE(c1.value_at(0.0));
    EXPECT_TRUE(c1.value_at(1e9));

    const Waveform s = Waveform::step(false, 10.0);
    EXPECT_FALSE(s.initial());
    EXPECT_TRUE(s.final());
    EXPECT_FALSE(s.value_at(9.99));
    EXPECT_TRUE(s.value_at(10.0));  // transition at t visible at t
    EXPECT_TRUE(s.value_at(11.0));
    EXPECT_DOUBLE_EQ(s.settle_time(), 10.0);
}

TEST(Waveform, FromEventsDropsNonToggles) {
    const std::vector<std::pair<Time, bool>> events{
        {1.0, true}, {2.0, true}, {3.0, false}, {4.0, false}, {5.0, true}};
    const Waveform w = Waveform::from_events(false, events);
    EXPECT_EQ(w.num_transitions(), 3u);
    EXPECT_FALSE(w.value_at(0.5));
    EXPECT_TRUE(w.value_at(1.5));
    EXPECT_FALSE(w.value_at(3.5));
    EXPECT_TRUE(w.value_at(5.5));
}

TEST(Waveform, FromEventsCancelsSimultaneousToggles) {
    const std::vector<std::pair<Time, bool>> events{{5.0, true}, {5.0, false}};
    const Waveform w = Waveform::from_events(false, events);
    EXPECT_TRUE(w.is_constant());
}

TEST(Waveform, FilterPulsesRemovesNarrow) {
    std::vector<std::pair<Time, bool>> events{
        {10.0, true}, {10.5, false},  // narrow pulse
        {20.0, true}, {30.0, false},  // wide pulse
    };
    Waveform w = Waveform::from_events(false, events);
    w.filter_pulses(2.0);
    EXPECT_EQ(w.num_transitions(), 2u);
    EXPECT_FALSE(w.value_at(10.2));
    EXPECT_TRUE(w.value_at(25.0));
}

TEST(Waveform, SlowedRisingEdgeShifts) {
    // 0 -> 1 at 10, 1 -> 0 at 30.
    const std::vector<std::pair<Time, bool>> events{{10.0, true},
                                                    {30.0, false}};
    const Waveform w = Waveform::from_events(false, events);
    const Waveform str = w.with_slowed_edges(true, 5.0);
    EXPECT_FALSE(str.value_at(12.0));
    EXPECT_TRUE(str.value_at(15.0));
    EXPECT_FALSE(str.value_at(31.0));  // falling edge unmoved
    const Waveform stf = w.with_slowed_edges(false, 5.0);
    EXPECT_TRUE(stf.value_at(10.5));
    EXPECT_TRUE(stf.value_at(34.0));
    EXPECT_FALSE(stf.value_at(35.5));
}

TEST(Waveform, SlowedEdgeSwallowsPulse) {
    // Pulse 10..12; delaying the rise by 5 pushes it past the fall.
    const std::vector<std::pair<Time, bool>> events{{10.0, true},
                                                    {12.0, false}};
    const Waveform w = Waveform::from_events(false, events);
    const Waveform slow = w.with_slowed_edges(true, 5.0);
    EXPECT_TRUE(slow.is_constant());
    EXPECT_FALSE(slow.initial());
}

TEST(Waveform, XorBasic) {
    const Waveform a = Waveform::step(false, 10.0);
    const Waveform b = Waveform::step(false, 15.0);
    const Waveform x = Waveform::xor_of(a, b);
    EXPECT_FALSE(x.initial());
    EXPECT_FALSE(x.value_at(5.0));
    EXPECT_TRUE(x.value_at(12.0));
    EXPECT_FALSE(x.value_at(20.0));
}

TEST(Waveform, XorOfIdenticalIsZero) {
    const std::vector<std::pair<Time, bool>> events{
        {1.0, true}, {4.0, false}, {9.0, true}};
    const Waveform w = Waveform::from_events(false, events);
    const Waveform x = Waveform::xor_of(w, w);
    EXPECT_TRUE(x.is_constant());
    EXPECT_FALSE(x.initial());
}

TEST(Waveform, OnesClipsAtHorizon) {
    const std::vector<std::pair<Time, bool>> events{{5.0, true},
                                                    {8.0, false},
                                                    {20.0, true}};
    const Waveform w = Waveform::from_events(false, events);
    const IntervalSet s = w.ones(25.0);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0].lo, 5.0);
    EXPECT_DOUBLE_EQ(s[0].hi, 8.0);
    EXPECT_DOUBLE_EQ(s[1].lo, 20.0);
    EXPECT_DOUBLE_EQ(s[1].hi, 25.0);
}

TEST(Waveform, OnesOfConstantOne) {
    const IntervalSet s = Waveform::constant(true).ones(100.0);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_DOUBLE_EQ(s[0].lo, 0.0);
    EXPECT_DOUBLE_EQ(s[0].hi, 100.0);
    EXPECT_TRUE(Waveform::constant(false).ones(100.0).empty());
}

TEST(Waveform, OnesIgnoresActivityPastHorizon) {
    const std::vector<std::pair<Time, bool>> events{{50.0, true},
                                                    {60.0, false}};
    const Waveform w = Waveform::from_events(false, events);
    EXPECT_TRUE(w.ones(40.0).empty());
}

// Property: value_at agrees with ones() membership for random waveforms.
class WaveformProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaveformProperty, OnesMatchesValueAt) {
    Prng rng(GetParam() * 131);
    std::vector<std::pair<Time, bool>> events;
    bool v = rng.chance(0.5);
    const bool initial = v;
    Time t = 0.0;
    for (int i = 0; i < 30; ++i) {
        t += rng.uniform(0.2, 5.0);
        v = !v;
        events.emplace_back(t, v);
    }
    const Waveform w = Waveform::from_events(initial, events);
    const Time horizon = 80.0;
    const IntervalSet ones = w.ones(horizon);
    for (int k = 0; k < 300; ++k) {
        const Time q = rng.uniform(0.0, horizon - 1e-6);
        EXPECT_EQ(ones.contains(q), w.value_at(q)) << "t=" << q;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaveformProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

// Property: XOR is measure-consistent: ones(xor) == symmetric difference.
class XorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XorProperty, XorMatchesPointwise) {
    Prng rng(GetParam() * 733);
    auto random_wave = [&rng]() {
        std::vector<std::pair<Time, bool>> events;
        bool v = rng.chance(0.5);
        const bool initial = v;
        Time t = 0.0;
        for (int i = 0; i < 20; ++i) {
            t += rng.uniform(0.3, 4.0);
            v = !v;
            events.emplace_back(t, v);
        }
        return Waveform::from_events(initial, events);
    };
    const Waveform a = random_wave();
    const Waveform b = random_wave();
    const Waveform x = Waveform::xor_of(a, b);
    for (int k = 0; k < 300; ++k) {
        const Time q = rng.uniform(0.0, 90.0);
        EXPECT_EQ(x.value_at(q), a.value_at(q) != b.value_at(q)) << q;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XorProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

// Property: slowing edges by 0 is the identity; slowing preserves the
// final value; a slowed waveform never has more transitions.
class SlowEdgeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlowEdgeProperty, SlowedEdgeInvariants) {
    Prng rng(GetParam() * 877);
    std::vector<std::pair<Time, bool>> events;
    bool v = rng.chance(0.5);
    const bool initial = v;
    Time t = 0.0;
    for (int i = 0; i < 16; ++i) {
        t += rng.uniform(0.2, 6.0);
        v = !v;
        events.emplace_back(t, v);
    }
    const Waveform w = Waveform::from_events(initial, events);
    for (bool rising : {true, false}) {
        EXPECT_EQ(w.with_slowed_edges(rising, 0.0), w);
        const Time delta = rng.uniform(0.1, 10.0);
        const Waveform slow = w.with_slowed_edges(rising, delta);
        EXPECT_EQ(slow.initial(), w.initial());
        EXPECT_EQ(slow.final(), w.final());
        EXPECT_LE(slow.num_transitions(), w.num_transitions());
        // Delay only retards: the slowed waveform's settle time does not
        // precede the original's by more than epsilon... it can shrink
        // when pulses vanish, but never extends past settle + delta.
        EXPECT_LE(slow.settle_time(), w.settle_time() + delta + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlowEdgeProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace fastmon
