#include "sim/logic_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

TEST(LogicSim, EvaluatesAdderCorrectly) {
    const Netlist nl = make_mini_adder();
    const LogicSim sim(nl);
    const std::size_t n_src = nl.comb_sources().size();

    // Source order: PIs (ia0, ib0, ..., cin) then FFs (a0..a3, b0..b3).
    // The sum logic reads the registers, so drive the FF sources.
    for (std::uint32_t a = 0; a < 16; ++a) {
        for (std::uint32_t b = 0; b < 16; b += 3) {
            std::vector<Bit> src(n_src, 0);
            for (int i = 0; i < 4; ++i) {
                src[nl.source_index(nl.find("a" + std::to_string(i)))] =
                    (a >> i) & 1;
                src[nl.source_index(nl.find("b" + std::to_string(i)))] =
                    (b >> i) & 1;
            }
            const std::vector<Bit> values = sim.eval(src);
            std::uint32_t sum = 0;
            for (int i = 0; i < 4; ++i) {
                sum |= static_cast<std::uint32_t>(
                           values[nl.find("s" + std::to_string(i))])
                       << i;
            }
            sum |= static_cast<std::uint32_t>(values[nl.find("c3")]) << 4;
            EXPECT_EQ(sum, a + b) << "a=" << a << " b=" << b;
        }
    }
}

TEST(LogicSim, AluOpcodesWork) {
    const Netlist nl = make_mini_alu();
    const LogicSim sim(nl);
    const std::size_t n_src = nl.comb_sources().size();
    Prng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        const auto x = static_cast<std::uint32_t>(rng.next_below(16));
        const auto y = static_cast<std::uint32_t>(rng.next_below(16));
        const auto op = static_cast<std::uint32_t>(rng.next_below(4));
        std::vector<Bit> src(n_src, 0);
        for (int i = 0; i < 4; ++i) {
            src[nl.source_index(nl.find("x" + std::to_string(i)))] =
                (x >> i) & 1;
            src[nl.source_index(nl.find("y" + std::to_string(i)))] =
                (y >> i) & 1;
        }
        src[nl.source_index(nl.find("op0"))] = op & 1;
        src[nl.source_index(nl.find("op1"))] = (op >> 1) & 1;
        const std::vector<Bit> values = sim.eval(src);
        std::uint32_t result = 0;
        for (int i = 0; i < 4; ++i) {
            // Registered result: the FF D value is the op result.
            const GateId q = nl.find("q" + std::to_string(i));
            result |= static_cast<std::uint32_t>(
                          values[nl.gate(q).fanin[0]])
                      << i;
        }
        std::uint32_t expect = 0;
        switch (op) {
            case 0: expect = x & y; break;
            case 1: expect = x | y; break;
            case 2: expect = x ^ y; break;
            case 3: expect = (x + y) & 0xF; break;
        }
        EXPECT_EQ(result, expect) << "x=" << x << " y=" << y << " op=" << op;
    }
}

// Property: eval64 lane k equals eval of pattern k.
class Eval64Agreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Eval64Agreement, LanesMatchScalar) {
    GeneratorConfig gc;
    gc.name = "ls_gen";
    gc.n_gates = 300;
    gc.n_ffs = 30;
    gc.n_inputs = 10;
    gc.n_outputs = 10;
    gc.depth = 10;
    gc.spread = 0.5;
    gc.seed = GetParam();
    const Netlist nl = generate_circuit(gc);
    const LogicSim sim(nl);
    const std::size_t n_src = nl.comb_sources().size();
    Prng rng(GetParam() * 17);

    std::vector<std::vector<Bit>> patterns(64, std::vector<Bit>(n_src));
    std::vector<std::uint64_t> packed(n_src, 0);
    for (std::size_t lane = 0; lane < 64; ++lane) {
        for (std::size_t s = 0; s < n_src; ++s) {
            patterns[lane][s] = rng.chance(0.5) ? 1 : 0;
            if (patterns[lane][s] != 0) packed[s] |= 1ULL << lane;
        }
    }
    const std::vector<std::uint64_t> wide = sim.eval64(packed);
    for (std::size_t lane = 0; lane < 64; lane += 7) {
        const std::vector<Bit> narrow = sim.eval(patterns[lane]);
        for (GateId id = 0; id < nl.size(); ++id) {
            EXPECT_EQ((wide[id] >> lane) & 1, narrow[id])
                << "gate " << nl.gate(id).name << " lane " << lane;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Eval64Agreement,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(LogicSim, RequiresFinalizedNetlist) {
    Netlist nl("unfinalized");
    nl.add_gate(CellType::Input, "a", {});
    EXPECT_THROW(LogicSim sim(nl), std::logic_error);
}

}  // namespace
}  // namespace fastmon
