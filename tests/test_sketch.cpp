// Tests of the mergeable streaming quantile sketch: the algebraic
// properties the campaign telemetry relies on (merge associativity and
// commutativity on bucket contents), the advertised relative-error
// bound against exact order statistics, and the bit-stable JSON round
// trip that lets sketches ride in manifests and heartbeat sidecars.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/json.hpp"
#include "util/prng.hpp"
#include "util/sketch.hpp"

namespace fastmon {
namespace {

// ------------------------------------------------------ basic contract

TEST(QuantileSketch, EmptySketchIsZero) {
    const QuantileSketch s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.quantile(50.0), 0.0);
}

TEST(QuantileSketch, SingleSampleIsExactEverywhere) {
    QuantileSketch s;
    s.record(4.0);
    // The log-bucket representative is only alpha-close to 4.0, but the
    // [min, max] clamp makes a single-sample sketch exact — the same
    // contract the old exact-reservoir histogram exposed.
    EXPECT_EQ(s.quantile(0.0), 4.0);
    EXPECT_EQ(s.quantile(50.0), 4.0);
    EXPECT_EQ(s.quantile(100.0), 4.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 4.0);
}

TEST(QuantileSketch, HandlesNegativesAndZero) {
    QuantileSketch s;
    for (const double x : {-10.0, -1.0, 0.0, 1.0, 10.0}) s.record(x);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_EQ(s.min(), -10.0);
    EXPECT_EQ(s.max(), 10.0);
    // The median of a symmetric set is the zero bucket, exactly.
    EXPECT_EQ(s.quantile(50.0), 0.0);
    EXPECT_LT(s.quantile(10.0), 0.0);
    EXPECT_GT(s.quantile(90.0), 0.0);
}

TEST(QuantileSketch, IgnoresNonFiniteSamples) {
    QuantileSketch s;
    s.record(std::nan(""));
    s.record(std::numeric_limits<double>::infinity());
    s.record(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(s.count(), 0u);
    s.record(2.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.quantile(50.0), 2.0);
}

TEST(QuantileSketch, WeightedRecordMatchesRepeatedRecord) {
    QuantileSketch a, b;
    a.record(3.0, 1000);
    for (int i = 0; i < 1000; ++i) b.record(3.0);
    EXPECT_EQ(a, b);
}

TEST(QuantileSketch, RejectsInvalidAlpha) {
    EXPECT_THROW(QuantileSketch(0.0), std::invalid_argument);
    EXPECT_THROW(QuantileSketch(1.0), std::invalid_argument);
    EXPECT_THROW(QuantileSketch(-0.1), std::invalid_argument);
}

// -------------------------------------------------- relative error bound

TEST(QuantileSketch, QuantileWithinRelativeErrorOfExact) {
    // Log-uniform samples across five decades: the regime the
    // per-device roll-latency sketch actually sees.
    Prng prng(1234);
    std::vector<double> samples;
    QuantileSketch s;
    for (int i = 0; i < 20000; ++i) {
        const double x = std::pow(10.0, prng.uniform(-2.0, 3.0));
        samples.push_back(x);
        s.record(x);
    }
    std::sort(samples.begin(), samples.end());
    for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
        const double exact = samples[static_cast<std::size_t>(
            p / 100.0 * static_cast<double>(samples.size() - 1))];
        const double approx = s.quantile(p);
        // 2*alpha headroom: alpha for the bucket representative plus
        // the rank landing one order statistic off in a dense region.
        EXPECT_NEAR(approx / exact, 1.0, 2.0 * s.alpha())
            << "p" << p << ": exact " << exact << " approx " << approx;
    }
}

TEST(QuantileSketch, MedianOfSmallIntegerStreamIsTight) {
    // The tolerance the metrics-histogram tests rely on: p50 of 1..100
    // within the old decimating reservoir's accuracy.
    QuantileSketch s;
    for (int i = 1; i <= 100; ++i) s.record(i);
    EXPECT_NEAR(s.quantile(50.0), 50.5, 1.0);
    EXPECT_EQ(s.quantile(0.0), 1.0);
    EXPECT_EQ(s.quantile(100.0), 100.0);
}

// ------------------------------------------------------- merge algebra

// Merge-associativity tests use exactly-representable values (powers
// of two times small integers) so even the tracked `sum` double is
// immune to FP addition order; bucket counts are exact integers and
// need no such care.
QuantileSketch make_sketch(std::uint64_t seed, int n) {
    Prng prng(seed);
    QuantileSketch s;
    for (int i = 0; i < n; ++i) {
        const double mantissa =
            static_cast<double>(1 + (prng.next_u64() % 8));  // 1..8
        const int exponent = static_cast<int>(prng.next_u64() % 10) - 4;
        s.record(std::ldexp(mantissa, exponent));
    }
    return s;
}

TEST(QuantileSketch, MergeIsCommutative) {
    const QuantileSketch a = make_sketch(1, 500);
    const QuantileSketch b = make_sketch(2, 700);
    QuantileSketch ab = a;
    ab.merge(b);
    QuantileSketch ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);
}

TEST(QuantileSketch, MergeIsAssociative) {
    const QuantileSketch a = make_sketch(3, 400);
    const QuantileSketch b = make_sketch(4, 600);
    const QuantileSketch c = make_sketch(5, 800);
    QuantileSketch left = a;   // (a + b) + c
    left.merge(b);
    left.merge(c);
    QuantileSketch bc = b;     // a + (b + c)
    bc.merge(c);
    QuantileSketch right = a;
    right.merge(bc);
    EXPECT_EQ(left, right);
}

TEST(QuantileSketch, MergeMatchesSingleStream) {
    // Sharding a stream then folding the shards must reproduce the
    // unsharded sketch — the property the per-worker campaign sketches
    // depend on.
    QuantileSketch whole;
    std::vector<QuantileSketch> shards(4);
    Prng prng(99);
    for (int i = 0; i < 4000; ++i) {
        const double x = std::ldexp(
            static_cast<double>(1 + (prng.next_u64() % 16)),
            static_cast<int>(prng.next_u64() % 6) - 3);
        whole.record(x);
        shards[static_cast<std::size_t>(i) % shards.size()].record(x);
    }
    QuantileSketch folded;
    for (const QuantileSketch& shard : shards) folded.merge(shard);
    EXPECT_EQ(folded, whole);
}

TEST(QuantileSketch, MergeRejectsMismatchedAlpha) {
    QuantileSketch coarse(0.05);
    const QuantileSketch fine(0.005);
    EXPECT_THROW(coarse.merge(fine), std::invalid_argument);
}

TEST(QuantileSketch, MergeEmptyIsIdentity) {
    const QuantileSketch a = make_sketch(7, 300);
    QuantileSketch merged = a;
    merged.merge(QuantileSketch());
    EXPECT_EQ(merged, a);
    QuantileSketch empty;
    empty.merge(a);
    EXPECT_EQ(empty, a);
}

// --------------------------------------------------- JSON round trip

TEST(QuantileSketch, JsonRoundTripIsBitStable) {
    const QuantileSketch original = make_sketch(11, 2000);
    const std::string dumped = original.to_json().dump();

    std::string err;
    const auto parsed = Json::parse(dumped, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    const auto restored = QuantileSketch::from_json(*parsed);
    ASSERT_TRUE(restored.has_value());

    // Bit-stable: dump -> parse -> from_json -> dump is the identical
    // string, and the restored sketch is deep-equal (doubles bitwise).
    EXPECT_EQ(restored->to_json().dump(), dumped);
    EXPECT_EQ(*restored, original);
    EXPECT_EQ(restored->quantile(50.0), original.quantile(50.0));
    EXPECT_EQ(restored->quantile(99.0), original.quantile(99.0));
}

TEST(QuantileSketch, JsonRoundTripPreservesNegativesAndZero) {
    QuantileSketch original;
    for (const double x : {-3.5, -0.25, 0.0, 0.0, 1.75, 42.0}) {
        original.record(x);
    }
    const auto restored = QuantileSketch::from_json(original.to_json());
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(*restored, original);
}

TEST(QuantileSketch, RestoredSketchMergesLikeTheOriginal) {
    // A deserialized sketch is a first-class shard: folding it must
    // equal folding the live original (checkpoint/resume of telemetry).
    const QuantileSketch a = make_sketch(13, 500);
    const QuantileSketch b = make_sketch(17, 500);
    const auto a_restored = QuantileSketch::from_json(a.to_json());
    ASSERT_TRUE(a_restored.has_value());
    QuantileSketch live = b;
    live.merge(a);
    QuantileSketch thawed = b;
    thawed.merge(*a_restored);
    EXPECT_EQ(live, thawed);
}

TEST(QuantileSketch, FromJsonRejectsGarbage) {
    EXPECT_FALSE(QuantileSketch::from_json(Json()).has_value());
    EXPECT_FALSE(QuantileSketch::from_json(Json::array()).has_value());
    Json j = Json::object();
    j.set("alpha", -1.0);
    EXPECT_FALSE(QuantileSketch::from_json(j).has_value());
}

TEST(QuantileSketch, SummaryCarriesTheManifestShape) {
    QuantileSketch s;
    for (int i = 1; i <= 10; ++i) s.record(i);
    const Json summary = s.summary();
    for (const char* key :
         {"count", "sum", "min", "max", "mean", "p50", "p90", "p99"}) {
        ASSERT_NE(summary.find(key), nullptr) << key;
        EXPECT_TRUE(summary.find(key)->is_number()) << key;
    }
    EXPECT_EQ(summary.find("count")->as_number(), 10.0);
    EXPECT_EQ(summary.find("min")->as_number(), 1.0);
    EXPECT_EQ(summary.find("max")->as_number(), 10.0);
}

}  // namespace
}  // namespace fastmon
