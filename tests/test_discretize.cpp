#include "schedule/discretize.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace fastmon {
namespace {

TEST(Discretize, PaperFigure5Example) {
    // Fig. 5 of the paper, qualitatively: three faults with overlapping
    // detection intervals; candidates must cover each fault.
    std::vector<IntervalSet> ranges(3);
    ranges[0].add(10.0, 40.0);
    ranges[1].add(25.0, 60.0);
    ranges[2].add(50.0, 80.0);
    const DiscretizationResult d = discretize_observation_times(ranges);
    ASSERT_FALSE(d.candidates.empty());
    // Every fault has at least one candidate inside its range.
    for (std::size_t f = 0; f < ranges.size(); ++f) {
        bool hit = false;
        for (Time t : d.candidates) {
            if (ranges[f].contains(t)) hit = true;
        }
        EXPECT_TRUE(hit) << "fault " << f;
    }
    // The overlap region (25, 40) detects both fault 0 and 1: some
    // candidate must carry both.
    bool both = false;
    for (std::size_t c = 0; c < d.candidates.size(); ++c) {
        if (d.covered[c].size() >= 2) both = true;
    }
    EXPECT_TRUE(both);
}

TEST(Discretize, CandidatesAreMidpointsBeforeClosings) {
    std::vector<IntervalSet> ranges(1);
    ranges[0].add(10.0, 20.0);
    const DiscretizationResult d = discretize_observation_times(ranges);
    ASSERT_EQ(d.candidates.size(), 1u);
    EXPECT_NEAR(d.candidates[0], 15.0, 1e-9);
    EXPECT_EQ(d.covered[0], (std::vector<std::uint32_t>{0}));
}

TEST(Discretize, EmptyInput) {
    const DiscretizationResult d = discretize_observation_times({});
    EXPECT_TRUE(d.candidates.empty());
    std::vector<IntervalSet> empty_ranges(5);
    const DiscretizationResult d2 =
        discretize_observation_times(empty_ranges);
    EXPECT_TRUE(d2.candidates.empty());
}

TEST(Discretize, CoveredSetsMatchMembership) {
    Prng rng(3);
    std::vector<IntervalSet> ranges(40);
    for (auto& r : ranges) {
        for (int i = 0; i < 2; ++i) {
            const Time lo = rng.uniform(0.0, 90.0);
            r.add(lo, lo + rng.uniform(1.0, 15.0));
        }
    }
    const DiscretizationResult d = discretize_observation_times(ranges);
    for (std::size_t c = 0; c < d.candidates.size(); ++c) {
        const Time t = d.candidates[c];
        for (std::uint32_t f = 0; f < ranges.size(); ++f) {
            const bool in_cover =
                std::find(d.covered[c].begin(), d.covered[c].end(), f) !=
                d.covered[c].end();
            EXPECT_EQ(in_cover, ranges[f].contains(t))
                << "candidate " << t << " fault " << f;
        }
    }
}

// Property: the candidate set always hits every non-empty range, with
// and without a candidate cap.
class DiscretizeCoverage : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiscretizeCoverage, EveryFaultKeepsACandidate) {
    Prng rng(GetParam() * 7919);
    std::vector<IntervalSet> ranges(300);
    for (auto& r : ranges) {
        const int k = 1 + static_cast<int>(rng.next_below(3));
        for (int i = 0; i < k; ++i) {
            const Time lo = rng.uniform(0.0, 500.0);
            r.add(lo, lo + rng.uniform(0.5, 40.0));
        }
    }
    for (std::size_t cap : {std::size_t{0}, std::size_t{32}, std::size_t{8}}) {
        DiscretizeOptions opts;
        opts.max_candidates = cap;
        const DiscretizationResult d =
            discretize_observation_times(ranges, opts);
        for (std::size_t f = 0; f < ranges.size(); ++f) {
            bool hit = false;
            for (const Interval& iv : ranges[f].intervals()) {
                auto it = std::lower_bound(d.candidates.begin(),
                                           d.candidates.end(), iv.lo);
                if (it != d.candidates.end() && *it < iv.hi) {
                    hit = true;
                    break;
                }
            }
            EXPECT_TRUE(hit) << "cap " << cap << " fault " << f;
        }
        // Candidates strictly increasing.
        for (std::size_t c = 1; c < d.candidates.size(); ++c) {
            EXPECT_LT(d.candidates[c - 1], d.candidates[c]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscretizeCoverage,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Discretize, CapBoundsCandidateCountUpToRepairs) {
    Prng rng(11);
    std::vector<IntervalSet> ranges(500);
    for (auto& r : ranges) {
        const Time lo = rng.uniform(0.0, 1000.0);
        r.add(lo, lo + rng.uniform(0.5, 10.0));
    }
    DiscretizeOptions opts;
    opts.max_candidates = 64;
    const DiscretizationResult d = discretize_observation_times(ranges, opts);
    // The repair step may add a few candidates past the cap, but the
    // count stays O(cap + repaired).
    EXPECT_LE(d.candidates.size(), 64u + 500u);
    EXPECT_GE(d.candidates.size(), 1u);
}

}  // namespace
}  // namespace fastmon
