// Differential tests for the batched structure-of-arrays STA engine:
// every lane of a BatchStaEngine must reproduce a scalar StaEngine
// evaluating the same device bit-for-bit (EXPECT_EQ on doubles, no
// tolerance — the per-lane operation order is the scalar order, so the
// documented <= 4 ulp contract is headroom, not slack).  Covers lane
// loading from variation factors, dense per-lane deltas, the per-lane
// pow2 rescale tier, lane retirement/reload, and the BatchRollout
// device path against roll_device (including ragged batches).
#include "timing/batch_sta_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/population.hpp"
#include "campaign/rollout.hpp"
#include "monitor/placement.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"
#include "timing/sta_engine.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

struct BatchFixture : ::testing::Test {
    Netlist nl = generate_circuit(
        GeneratorConfig{"batch_diff", 300, 24, 8, 8, 10, 0.55, 77});
    DelayAnnotation nominal = DelayAnnotation::nominal(nl);
    std::vector<GateId> comb = [this] {
        std::vector<GateId> ids;
        for (GateId id = 0; id < nl.size(); ++id) {
            if (is_combinational(nl.gate(id).type)) ids.push_back(id);
        }
        return ids;
    }();

    static constexpr double kSigmaLog = 0.06;

    /// Scalar engine for device `seed`, loaded exactly the way the
    /// campaign's scalar path does (materialized annotation).
    struct ScalarLane {
        DelayAnnotation annotation;
        std::unique_ptr<StaEngine> engine;
    };
    ScalarLane make_scalar(std::uint64_t seed, double margin = 1.0) const {
        ScalarLane lane{DelayAnnotation::with_lognormal_variation(
                            nl, kSigmaLog, seed),
                        nullptr};
        lane.engine = std::make_unique<StaEngine>(
            nl, lane.annotation, margin, StaEngine::Scope::Arrivals);
        return lane;
    }

    void load_device_lane(BatchStaEngine& batch, std::size_t lane,
                          std::uint64_t seed) const {
        std::vector<double> factors;
        DelayAnnotation::lognormal_variation_factors(nl, kSigmaLog, seed,
                                                     factors);
        batch.load_lane(lane, factors);
    }

    /// Aging-like dense delta plus a couple of defect extras, device-
    /// and round-specific.
    DelayDelta device_delta(std::uint64_t seed, int round) const {
        Prng rng = Prng::stream(seed, 0xBA7C4 + static_cast<std::uint64_t>(round));
        DelayDelta delta;
        const double severity = 0.02 * (round + 1);
        for (const GateId g : comb) {
            delta.scale(g, 1.0 + severity * rng.uniform(0.5, 1.5));
        }
        for (int k = 0; k < 2; ++k) {
            const GateId g =
                comb[static_cast<std::size_t>(rng.next_below(comb.size()))];
            delta.add(g, DelayDelta::kAllPins, rng.uniform(0.5, 10.0));
        }
        return delta;
    }

    void expect_lane_matches(const BatchStaEngine& batch, std::size_t lane,
                             const StaResult& want) const {
        for (GateId id = 0; id < nl.size(); ++id) {
            EXPECT_EQ(batch.max_arrival(id, lane), want.max_arrival[id])
                << "lane " << lane << " gate " << id;
            EXPECT_EQ(batch.min_arrival(id, lane), want.min_arrival[id])
                << "lane " << lane << " gate " << id;
        }
        EXPECT_EQ(batch.critical_path_length(lane),
                  want.critical_path_length);
        EXPECT_EQ(batch.clock_period(lane), want.clock_period);
    }
};

TEST_F(BatchFixture, LanesMatchScalarEnginesBitwise) {
    BatchStaEngine batch(nl, nominal);
    std::vector<ScalarLane> scalars;
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        const std::uint64_t seed = 100 + l;
        load_device_lane(batch, l, seed);
        scalars.push_back(make_scalar(seed));
    }
    std::vector<DelayDelta> deltas(kBatchWidth);
    for (int round = 0; round < 5; ++round) {
        BatchDelayDelta bd;
        for (std::size_t l = 0; l < kBatchWidth; ++l) {
            deltas[l] = device_delta(100 + l, round);
            bd.set(l, &deltas[l]);
        }
        batch.update(bd);
        for (std::size_t l = 0; l < kBatchWidth; ++l) {
            expect_lane_matches(batch, l,
                                scalars[l].engine->update(deltas[l]));
        }
    }
    EXPECT_EQ(batch.stats().batch_passes, 5u);
    EXPECT_EQ(batch.stats().lane_loads, kBatchWidth);
}

TEST_F(BatchFixture, Pow2RescaleTierIsExactPerLane) {
    BatchStaEngine batch(nl, nominal);
    std::vector<ScalarLane> scalars;
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        const std::uint64_t seed = 300 + l;
        load_device_lane(batch, l, seed);
        scalars.push_back(make_scalar(seed));
    }
    // Establish a pure-uniform state (empty deltas -> dense pass).
    std::vector<DelayDelta> deltas(kBatchWidth);
    BatchDelayDelta bd;
    for (std::size_t l = 0; l < kBatchWidth; ++l) bd.set(l, &deltas[l]);
    batch.update(bd);
    const auto passes_before = batch.stats().batch_passes;

    // Per-lane power-of-two factors (different per lane, including an
    // unchanged one): must hit the rescale tier, no new forward pass,
    // and stay bit-identical to the scalar engines' own tier.
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        deltas[l].uniform_scale = l % 3 == 0 ? 2.0 : l % 3 == 1 ? 0.5 : 1.0;
    }
    batch.update(bd);
    EXPECT_EQ(batch.stats().batch_passes, passes_before);
    EXPECT_GE(batch.stats().scaled_updates, 1u);
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        scalars[l].engine->analyze();
        expect_lane_matches(batch, l,
                            scalars[l].engine->update(deltas[l]));
    }

    // A non-pow2 factor on any lane forces the dense path — still
    // bit-identical (x * 1.3 recomputed from base, not rescaled).
    deltas[0].uniform_scale = 1.3;
    batch.update(bd);
    EXPECT_EQ(batch.stats().batch_passes, passes_before + 1);
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        expect_lane_matches(batch, l, scalars[l].engine->update(deltas[l]));
    }
}

TEST_F(BatchFixture, RetiredLaneDoesNotDrainTheBatch) {
    BatchStaEngine batch(nl, nominal);
    std::vector<ScalarLane> scalars;
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        const std::uint64_t seed = 500 + l;
        load_device_lane(batch, l, seed);
        scalars.push_back(make_scalar(seed));
    }
    std::vector<DelayDelta> deltas(kBatchWidth);
    const std::size_t retired = kBatchWidth / 2;
    for (int round = 0; round < 4; ++round) {
        if (round == 2) {
            batch.retire_lane(retired);
            EXPECT_FALSE(batch.lane_active(retired));
        }
        BatchDelayDelta bd;
        for (std::size_t l = 0; l < kBatchWidth; ++l) {
            if (round >= 2 && l == retired) continue;  // null slot
            deltas[l] = device_delta(500 + l, round);
            bd.set(l, &deltas[l]);
        }
        batch.update(bd);
        for (std::size_t l = 0; l < kBatchWidth; ++l) {
            if (round >= 2 && l == retired) continue;
            expect_lane_matches(batch, l,
                                scalars[l].engine->update(deltas[l]));
        }
    }
    EXPECT_EQ(batch.active_lanes(), kBatchWidth - 1);

    // Reload the retired lane with a fresh device; it rejoins the
    // batch bit-exactly.
    load_device_lane(batch, retired, 999);
    ScalarLane fresh = make_scalar(999);
    BatchDelayDelta bd;
    for (std::size_t l = 0; l < kBatchWidth; ++l) {
        deltas[l] = device_delta(l == retired ? 999 : 500 + l, 7);
        bd.set(l, &deltas[l]);
    }
    batch.update(bd);
    expect_lane_matches(batch, retired, fresh.engine->update(deltas[retired]));
}

/// Campaign-shaped rollout context over the mini-ALU, built the way
/// run_campaign's prepare phase does.
struct RolloutFixture : ::testing::Test {
    Netlist nl = make_mini_alu();
    DelayAnnotation nominal = DelayAnnotation::nominal(nl);
    MonitorPlacement placement;
    RolloutContext ctx;
    std::vector<GateId> sites = combinational_sites(nl);
    PopulationModel model = [] {
        PopulationModel m;
        m.defect.incidence = 0.4;
        return m;
    }();

    void SetUp() override {
        StaEngine engine(nl, nominal, 1.6);
        const StaResult& sta = engine.analyze();
        const double fractions[] = {0.05, 0.10, 0.15, 1.0 / 3.0};
        placement = place_monitors(nl, sta, 0.25, fractions);
        ctx.netlist = &nl;
        ctx.placement = &placement;
        ctx.clock_period = sta.clock_period;
        ctx.grid = make_year_grid(12.0, 0.5);
        ctx.screen_years = 0.5;
        ctx.variation_sigma_log = 0.05;
    }

    std::vector<DeviceSample> sample(std::size_t count,
                                     std::uint64_t seed = 21) const {
        std::vector<DeviceSample> samples;
        for (std::size_t i = 0; i < count; ++i) {
            samples.push_back(sample_device(model, seed,
                                            static_cast<std::uint32_t>(i),
                                            sites, ctx.clock_period));
        }
        return samples;
    }
};

TEST_F(RolloutFixture, BatchRollMatchesRollDeviceBitwise) {
    const auto samples = sample(kBatchWidth);
    std::vector<DeviceOutcome> batched(samples.size());
    BatchRollout rollout(ctx);
    rollout.roll(samples, batched);
    std::unique_ptr<StaEngine> scratch;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(batched[i], roll_device(ctx, samples[i], &scratch))
            << "device " << i;
    }
    EXPECT_EQ(rollout.stats().devices, samples.size());
    EXPECT_EQ(rollout.stats().batches, 1u);
}

TEST_F(RolloutFixture, RaggedBatchesMatchRollDevice) {
    // Every ragged size 1..width: trailing lanes retire, outcomes stay
    // bit-identical to the scalar path.
    BatchRollout rollout(ctx);
    std::unique_ptr<StaEngine> scratch;
    for (std::size_t n = 1; n <= kBatchWidth; ++n) {
        const auto samples = sample(n, 40 + n);
        std::vector<DeviceOutcome> batched(n);
        rollout.roll(samples, batched);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(batched[i], roll_device(ctx, samples[i], &scratch))
                << "ragged " << n << " device " << i;
        }
    }
}

TEST_F(RolloutFixture, SettledLanesRetireEarlyWithoutChangingOutcomes) {
    // High incidence + long horizon: most devices fail and trip every
    // band well before the horizon, so lanes must settle early — and
    // still match the scalar path, which always evaluates every year.
    PopulationModel hot = model;
    hot.defect.incidence = 1.0;
    std::vector<DeviceSample> samples;
    for (std::size_t i = 0; i < kBatchWidth; ++i) {
        samples.push_back(sample_device(hot, 77,
                                        static_cast<std::uint32_t>(i), sites,
                                        ctx.clock_period));
    }
    std::vector<DeviceOutcome> batched(samples.size());
    BatchRollout rollout(ctx);
    rollout.roll(samples, batched);
    std::unique_ptr<StaEngine> scratch;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(batched[i], roll_device(ctx, samples[i], &scratch))
            << "device " << i;
    }
    // The early-retirement accounting is visible: settled lanes stop
    // paying for grid years.
    EXPECT_LE(rollout.stats().lane_years,
              ctx.grid.size() * samples.size());
}

}  // namespace
}  // namespace fastmon
