// Campaign checkpoint/resume: snapshot round trips, structural
// validation, fingerprint guarding, and the resume-equivalence
// guarantee (a resumed campaign converges to the uninterrupted
// aggregate bit-for-bit).
#include "campaign/checkpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "campaign/campaign.hpp"
#include "netlist/iscas_data.hpp"

namespace fastmon {
namespace {

DeviceOutcome make_outcome(std::uint32_t index) {
    DeviceOutcome out;
    out.index = index;
    out.marginal = (index % 2) == 0;
    out.num_defects = index % 3;
    out.aging_amplitude = 0.4 + 0.01 * index;
    out.first_alert_years = {-1.0, 0.5 + index, 1.5 + index};
    out.failure_years = 4.0 + index;
    out.margin_used_t0 = 0.6;
    out.screen_score = index == 0 ? 1.25 : 0.0;
    return out;
}

class CheckpointTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("fastmon_ckpt_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
    [[nodiscard]] std::string path(const std::string& name) const {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

TEST_F(CheckpointTest, JsonRoundTripPreservesEverything) {
    CampaignCheckpoint ckpt;
    ckpt.fingerprint = 0x0123456789ABCDEFULL;
    ckpt.population = 10;
    ckpt.outcomes = {make_outcome(0), make_outcome(3), make_outcome(7)};

    const auto back = CampaignCheckpoint::from_json(ckpt.to_json());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->fingerprint, ckpt.fingerprint);
    EXPECT_EQ(back->population, ckpt.population);
    EXPECT_EQ(back->outcomes, ckpt.outcomes);
}

TEST_F(CheckpointTest, FileRoundTripAndMissingFile) {
    CampaignCheckpoint ckpt;
    ckpt.fingerprint = checkpoint_fingerprint("some campaign");
    ckpt.population = 4;
    ckpt.outcomes = {make_outcome(1), make_outcome(2)};
    ASSERT_TRUE(save_checkpoint(path("c.json"), ckpt));

    std::string error;
    const auto back = load_checkpoint(path("c.json"), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->outcomes, ckpt.outcomes);

    // A missing file is a fresh campaign, not an error.
    error.clear();
    EXPECT_FALSE(load_checkpoint(path("absent.json"), &error).has_value());
    EXPECT_TRUE(error.empty());
}

TEST_F(CheckpointTest, RejectsCorruptAndInvalidSnapshots) {
    {
        std::ofstream out(path("garbage.json"));
        out << "{not json";
    }
    std::string error;
    EXPECT_FALSE(load_checkpoint(path("garbage.json"), &error).has_value());
    EXPECT_NE(error.find("not valid JSON"), std::string::npos);

    CampaignCheckpoint ckpt;
    ckpt.population = 5;
    ckpt.outcomes = {make_outcome(2), make_outcome(1)};  // not ascending
    EXPECT_FALSE(CampaignCheckpoint::from_json(ckpt.to_json()).has_value());

    ckpt.outcomes = {make_outcome(1), make_outcome(9)};  // out of range
    EXPECT_FALSE(CampaignCheckpoint::from_json(ckpt.to_json()).has_value());

    ckpt.outcomes = {make_outcome(1), make_outcome(2)};  // valid again
    Json bad_format = ckpt.to_json();
    bad_format.set("format", 3);  // from the future
    std::string why;
    EXPECT_FALSE(
        CampaignCheckpoint::from_json(bad_format, &why).has_value());
    EXPECT_NE(why.find("format"), std::string::npos) << why;
}

TEST_F(CheckpointTest, ChecksumRejectsATamperedOutcome) {
    CampaignCheckpoint ckpt;
    ckpt.fingerprint = checkpoint_fingerprint("campaign");
    ckpt.population = 5;
    ckpt.outcomes = {make_outcome(1), make_outcome(2)};
    Json doc = ckpt.to_json();
    ASSERT_TRUE(CampaignCheckpoint::from_json(doc).has_value());

    // Flip one trusted value without touching the stored checksum —
    // the canonical-payload recomputation must notice.
    Json outcomes = *doc.find("outcomes");
    outcomes.as_array()[0].set("failure_years", 99.0);
    doc.set("outcomes", std::move(outcomes));
    std::string error;
    EXPECT_FALSE(CampaignCheckpoint::from_json(doc, &error).has_value());
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;

    // A checkpoint missing its checksum entirely is also rejected
    // (pre-checksum snapshots are not silently trusted).
    Json stripped = ckpt.to_json();
    JsonObject& obj = stripped.as_object();
    obj.erase(std::remove_if(obj.begin(), obj.end(),
                             [](const auto& kv) {
                                 return kv.first == "checksum";
                             }),
              obj.end());
    error.clear();
    EXPECT_FALSE(
        CampaignCheckpoint::from_json(stripped, &error).has_value());
}

TEST(CheckpointFingerprint, SensitiveToEveryConfigKnob) {
    const Netlist nl = make_mini_alu();
    CampaignConfig base;
    const std::string canonical = campaign_canonical(nl, base);
    EXPECT_NE(canonical.find("campaign-v1"), std::string::npos);

    CampaignConfig seed = base;
    seed.seed = 2;
    CampaignConfig pop = base;
    pop.population = base.population + 1;
    CampaignConfig incidence = base;
    incidence.model.defect.incidence += 0.01;
    const std::uint64_t fp = checkpoint_fingerprint(canonical);
    EXPECT_NE(fp, checkpoint_fingerprint(campaign_canonical(nl, seed)));
    EXPECT_NE(fp, checkpoint_fingerprint(campaign_canonical(nl, pop)));
    EXPECT_NE(fp, checkpoint_fingerprint(campaign_canonical(nl, incidence)));
    // Stable across calls (no hidden state in the canonical string).
    EXPECT_EQ(fp, checkpoint_fingerprint(campaign_canonical(nl, base)));
}

struct ResumeFixture : CheckpointTest {
    Netlist nl = make_mini_alu();

    CampaignConfig config(const std::string& ckpt_path) const {
        CampaignConfig c;
        c.population = 20;
        c.seed = 5;
        c.model.defect.incidence = 0.3;
        c.num_threads = 1;
        c.checkpoint_path = ckpt_path;
        c.checkpoint_every = 6;
        return c;
    }
};

TEST_F(ResumeFixture, ResumeConvergesToUninterruptedAggregate) {
    // Reference: an uninterrupted run (no checkpointing at all).
    CampaignConfig plain = config("");
    const CampaignResult reference = run_campaign(nl, plain);

    // A full checkpointed run, then truncate its snapshot to a prefix
    // — the state a killed campaign would have left behind.
    CampaignConfig ckpt_config = config(path("resume.json"));
    const CampaignResult full = run_campaign(nl, ckpt_config);
    EXPECT_GE(full.checkpoints_written, 1u);
    std::string error;
    auto snapshot = load_checkpoint(path("resume.json"), &error);
    ASSERT_TRUE(snapshot.has_value()) << error;
    ASSERT_EQ(snapshot->outcomes.size(), ckpt_config.population);
    snapshot->outcomes.resize(8);
    ASSERT_TRUE(save_checkpoint(path("resume.json"), *snapshot));

    CampaignConfig resumed_config = ckpt_config;
    resumed_config.resume = true;
    const CampaignResult resumed = run_campaign(nl, resumed_config);

    EXPECT_EQ(resumed.devices_resumed, 8u);
    EXPECT_EQ(resumed.devices_completed, ckpt_config.population);
    const PhaseStatus* resume_phase =
        resumed.status.find("campaign_resume");
    ASSERT_NE(resume_phase, nullptr);
    EXPECT_EQ(resume_phase->outcome, PhaseOutcome::Ok);

    // The contract: outcomes and the deterministic report blocks are
    // bit-identical to the uninterrupted run.
    EXPECT_EQ(resumed.outcomes, reference.outcomes);
    EXPECT_EQ(resumed.to_json(resumed_config).find("aggregate")->dump(2),
              reference.to_json(plain).find("aggregate")->dump(2));
}

TEST_F(ResumeFixture, BatchedResumeCrossesBatchBoundaryBitIdentically) {
    // Resume with a prefix that is NOT a multiple of the batch width:
    // the first batch after resume packs the ragged remainder of one
    // "old" batch together with fresh devices.  Outcomes must still be
    // bit-identical to an uninterrupted batched run AND to the scalar
    // reference (batch_width is deliberately outside the fingerprint,
    // so scalar-written checkpoints resume under the batched engine).
    CampaignConfig scalar_plain = config("");
    scalar_plain.batch_width = 1;
    const CampaignResult reference = run_campaign(nl, scalar_plain);

    CampaignConfig batched_ckpt = config(path("batch_resume.json"));
    batched_ckpt.batch_width = 0;  // compiled width
    const CampaignResult full = run_campaign(nl, batched_ckpt);
    EXPECT_EQ(full.outcomes, reference.outcomes);

    std::string error;
    auto snapshot = load_checkpoint(path("batch_resume.json"), &error);
    ASSERT_TRUE(snapshot.has_value()) << error;
    ASSERT_EQ(snapshot->outcomes.size(), batched_ckpt.population);
    // 5 completed devices: inside the first batch for every compiled
    // width >= 2, and not a multiple of 4 or 8.
    snapshot->outcomes.resize(5);
    ASSERT_TRUE(save_checkpoint(path("batch_resume.json"), *snapshot));

    CampaignConfig resumed_config = batched_ckpt;
    resumed_config.resume = true;
    const CampaignResult resumed = run_campaign(nl, resumed_config);
    EXPECT_EQ(resumed.devices_resumed, 5u);
    EXPECT_EQ(resumed.devices_completed, batched_ckpt.population);
    EXPECT_EQ(resumed.outcomes, reference.outcomes);
    EXPECT_EQ(resumed.to_json(resumed_config).find("aggregate")->dump(2),
              reference.to_json(scalar_plain).find("aggregate")->dump(2));
}

TEST_F(ResumeFixture, MismatchedFingerprintFallsBackToFreshStart) {
    CampaignConfig first = config(path("stale.json"));
    (void)run_campaign(nl, first);

    // Same checkpoint file, different campaign seed: the snapshot must
    // not be trusted.
    CampaignConfig other = first;
    other.seed = 99;
    other.resume = true;
    const CampaignResult result = run_campaign(nl, other);
    EXPECT_EQ(result.devices_resumed, 0u);
    EXPECT_EQ(result.devices_completed, other.population);
    const PhaseStatus* resume_phase = result.status.find("campaign_resume");
    ASSERT_NE(resume_phase, nullptr);
    EXPECT_EQ(resume_phase->outcome, PhaseOutcome::Degraded);
    EXPECT_NE(resume_phase->detail.find("fresh start"), std::string::npos);

    // The fresh run still matches a never-checkpointed run of the same
    // config.
    CampaignConfig plain = other;
    plain.checkpoint_path.clear();
    plain.resume = false;
    const CampaignResult reference = run_campaign(nl, plain);
    EXPECT_EQ(result.outcomes, reference.outcomes);
}

TEST_F(ResumeFixture, CorruptedSnapshotOnDiskFallsBackToFreshStart) {
    // A full checkpointed run, then flip one digit inside the snapshot
    // on disk — still valid JSON, so only the payload checksum can
    // catch it.
    CampaignConfig ckpt_config = config(path("bitrot.json"));
    (void)run_campaign(nl, ckpt_config);
    {
        std::ifstream is(path("bitrot.json"), std::ios::binary);
        std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        is.close();
        const std::size_t at = text.find("\"outcomes\"");
        ASSERT_NE(at, std::string::npos);
        for (std::size_t i = at; i < text.size(); ++i) {
            if (text[i] >= '1' && text[i] <= '8') {
                ++text[i];
                break;
            }
        }
        std::ofstream(path("bitrot.json"), std::ios::binary) << text;
    }

    CampaignConfig resumed_config = ckpt_config;
    resumed_config.resume = true;
    const CampaignResult result = run_campaign(nl, resumed_config);

    // Honest degradation: nothing resumed, the reason names the
    // checksum, and the fresh run converges to the reference.
    EXPECT_EQ(result.devices_resumed, 0u);
    EXPECT_EQ(result.devices_completed, resumed_config.population);
    const PhaseStatus* resume_phase = result.status.find("campaign_resume");
    ASSERT_NE(resume_phase, nullptr);
    EXPECT_EQ(resume_phase->outcome, PhaseOutcome::Degraded);
    EXPECT_NE(resume_phase->detail.find("checksum"), std::string::npos)
        << resume_phase->detail;
    EXPECT_NE(resume_phase->detail.find("fresh start"), std::string::npos);

    CampaignConfig plain = config("");
    const CampaignResult reference = run_campaign(nl, plain);
    EXPECT_EQ(result.outcomes, reference.outcomes);
    EXPECT_EQ(result.to_json(resumed_config).find("aggregate")->dump(2),
              reference.to_json(plain).find("aggregate")->dump(2));
}

}  // namespace
}  // namespace fastmon
