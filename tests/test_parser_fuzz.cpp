// Randomized malformed-input corpus for the four text parsers (.bench,
// Verilog, SDF, pattern files) and the JSON reader.
//
// The contract under test: for ANY byte soup, a parser either succeeds
// or throws a structured Diagnostic — it never crashes, never throws a
// non-runtime_error type, and never hangs.  Mutations are the classic
// trio: truncation, garbage-byte splices, and (for JSON) pathological
// nesting.  Everything is seeded — a failure reproduces from the test
// name alone.  CI runs this file under ASan/UBSan where "no crash/UB"
// is actually checked, not assumed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "atpg/pattern.hpp"
#include "netlist/aiger_io.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/iscas_data.hpp"
#include "netlist/verilog_io.hpp"
#include "timing/sdf.hpp"
#include "util/diagnostic.hpp"
#include "util/json.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

// Seed corpora: small valid inputs that mutations start from, so the
// fuzz walk spends its budget near the interesting (almost-valid) part
// of the input space instead of rejecting pure noise at byte one.
const char* kBenchSeed =
    "# c17-like\n"
    "INPUT(G1)\nINPUT(G2)\nINPUT(G3)\n"
    "OUTPUT(G7)\n"
    "G5 = NAND(G1, G2)\n"
    "G6 = NAND(G2, G3)\n"
    "G7 = NAND(G5, G6)\n";

const char* kVerilogSeed =
    "module top(a, b, y);\n"
    "  input a, b;\n"
    "  output y;\n"
    "  wire w1;\n"
    "  nand u1(w1, a, b);\n"
    "  not u2(y, w1);\n"
    "endmodule\n";

const char* kSdfSeed =
    "(DELAYFILE\n"
    "  (SDFVERSION \"3.0\")\n"
    "  (CELL (CELLTYPE \"NAND2\") (INSTANCE G10)\n"
    "    (DELAY (ABSOLUTE\n"
    "      (IOPATH in0 out (1.5) (1.25))\n"
    "      (IOPATH in1 out (0.5) (2.0))\n"
    "    ))))\n";

const char* kPatternSeed =
    "# two patterns\n"
    "0101 1010\n"
    "1111 0000\n";

// Half adder with a latch (see test_aiger_io.cpp for the literal map).
const char* kAagSeed =
    "aag 7 2 1 2 4\n"
    "2\n4\n"
    "6 10\n"
    "12\n6\n"
    "10 2 4\n"
    "8 3 5\n"
    "12 9 11\n"
    "14 2 5\n"
    "i0 a\ni1 b\nl0 q\no0 sum\nc\nfuzz seed\n";

// Binary AIGER: single AND gate 6 = 2 & 4, delta bytes \x02\x02.
std::string aig_seed() {
    std::string s = "aig 3 2 0 1 1\n6\n";
    s.push_back(char(2));
    s.push_back(char(2));
    return s;
}

const char* kJsonSeed =
    "{\"tool\": {\"name\": \"fastmon\"}, \"phases\": [1, 2.5, true, null],"
    " \"s\": \"a\\nb\"}";

std::string truncate_at(const std::string& text, Prng& prng) {
    if (text.empty()) return text;
    return text.substr(0, prng.next_below(text.size()));
}

std::string splice_garbage(const std::string& text, Prng& prng) {
    std::string out = text;
    const std::size_t edits = 1 + prng.next_below(8);
    for (std::size_t i = 0; i < edits; ++i) {
        const auto byte =
            static_cast<char>(prng.next_below(256));  // any byte, NUL too
        if (out.empty() || prng.chance(0.5)) {
            out.insert(out.begin() + static_cast<std::ptrdiff_t>(
                                         prng.next_below(out.size() + 1)),
                       byte);
        } else {
            out[prng.next_below(out.size())] = byte;
        }
    }
    return out;
}

std::string mutate(const std::string& seed_text, Prng& prng) {
    switch (prng.next_below(3)) {
        case 0: return truncate_at(seed_text, prng);
        case 1: return splice_garbage(seed_text, prng);
        default: return splice_garbage(truncate_at(seed_text, prng), prng);
    }
}

/// Runs `parse` on `rounds` mutants of `seed_text`.  Success or a
/// Diagnostic are both fine; anything else fails the test with the
/// reproducing seed in the message.
template <typename ParseFn>
void fuzz_parser(const char* name, const std::string& seed_text,
                 std::size_t rounds, ParseFn&& parse) {
    Prng prng(0xF0CCED + std::string_view(name).size());
    for (std::size_t round = 0; round < rounds; ++round) {
        const std::string input = mutate(seed_text, prng);
        try {
            parse(input);
        } catch (const Diagnostic& d) {
            // Structured failure: must carry its source tag and format
            // a non-empty message.
            EXPECT_EQ(d.source(), name) << "round " << round;
            EXPECT_FALSE(std::string(d.what()).empty());
        } catch (const std::exception& e) {
            FAIL() << name << " round " << round
                   << " threw a non-Diagnostic: " << e.what();
        }
    }
}

TEST(ParserFuzz, BenchNeverCrashes) {
    fuzz_parser("bench", kBenchSeed, 400, [](const std::string& text) {
        (void)read_bench_string(text, "fuzz");
    });
}

TEST(ParserFuzz, VerilogNeverCrashes) {
    fuzz_parser("verilog", kVerilogSeed, 400, [](const std::string& text) {
        (void)read_verilog_string(text);
    });
}

TEST(ParserFuzz, SdfNeverCrashes) {
    const Netlist nl = make_s27();
    fuzz_parser("sdf", kSdfSeed, 400, [&nl](const std::string& text) {
        (void)read_sdf_string(text, nl);
    });
}

TEST(ParserFuzz, PatternNeverCrashes) {
    fuzz_parser("pattern", kPatternSeed, 400, [](const std::string& text) {
        (void)read_patterns_string(text, 4);
    });
}

TEST(ParserFuzz, AigerAsciiNeverCrashes) {
    fuzz_parser("aiger", kAagSeed, 400, [](const std::string& text) {
        (void)read_aiger_string(text, "fuzz");
    });
}

TEST(ParserFuzz, AigerBinaryNeverCrashes) {
    // The binary decoder walks raw delta-varints; mutations hit the
    // mid-stream truncation and overflow paths ASCII fuzzing cannot.
    fuzz_parser("aiger", aig_seed(), 400, [](const std::string& text) {
        (void)read_aiger_string(text, "fuzz");
    });
}

TEST(ParserFuzz, AigerHugeHeaderIsRejectedNotAllocated) {
    // A lying header must be a Diagnostic before any node allocation.
    EXPECT_THROW(
        (void)read_aiger_string("aag 4294967295 4294967295 0 0 0\n", "x"),
        Diagnostic);
    EXPECT_THROW(
        (void)read_aiger_string("aig 4294967295 4294967295 0 0 0\n", "x"),
        Diagnostic);
}

TEST(ParserFuzz, JsonNeverCrashes) {
    fuzz_parser("json", kJsonSeed, 600, [](const std::string& text) {
        (void)parse_json_or_throw(text, "fuzz.json");
    });
}

TEST(ParserFuzz, JsonDeepNestingIsRejectedNotOverflowed) {
    // 100k opening brackets: without the parser's depth cap this is a
    // stack overflow, not a parse error.
    std::string deep(100000, '[');
    EXPECT_THROW((void)parse_json_or_throw(deep, "deep.json"), Diagnostic);
    std::string deep_objects;
    for (int i = 0; i < 50000; ++i) deep_objects += "{\"a\":";
    EXPECT_THROW((void)parse_json_or_throw(deep_objects, "deep.json"),
                 Diagnostic);
    // Depth just under the cap still parses.
    const std::size_t ok_depth = Json::kMaxParseDepth - 1;
    std::string nested(ok_depth, '[');
    nested += "1";
    nested.append(ok_depth, ']');
    EXPECT_NO_THROW((void)parse_json_or_throw(nested, "ok.json"));
}

TEST(ParserFuzz, VerilogHugeBusRangeIsRejected) {
    // A malicious [0:2^31] range must be a Diagnostic, not an OOM.
    const std::string text =
        "module top(a, y);\n"
        "  input [0:2000000000] a;\n"
        "  output y;\n"
        "  buf u1(y, a[0]);\n"
        "endmodule\n";
    EXPECT_THROW((void)read_verilog_string(text), Diagnostic);
}

}  // namespace
}  // namespace fastmon
