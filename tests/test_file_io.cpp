// File-system round trips for every interchange format (the string
// variants are covered elsewhere; these exercise the file entry points
// and error handling for missing files).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "netlist/bench_io.hpp"
#include "netlist/iscas_data.hpp"
#include "netlist/verilog_io.hpp"
#include "timing/sdf.hpp"
#include "timing/sta_engine.hpp"

namespace fastmon {
namespace {

class FileIoTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("fastmon_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
    [[nodiscard]] std::string path(const std::string& name) const {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

TEST_F(FileIoTest, BenchFileRoundTrip) {
    const Netlist original = make_s27();
    {
        std::ofstream out(path("s27.bench"));
        write_bench(out, original);
    }
    const Netlist back = read_bench_file(path("s27.bench"));
    EXPECT_EQ(back.name(), "s27");  // basename without extension
    EXPECT_EQ(back.num_comb_gates(), original.num_comb_gates());
    EXPECT_EQ(back.flip_flops().size(), original.flip_flops().size());
}

TEST_F(FileIoTest, BenchFileMissing) {
    EXPECT_THROW(read_bench_file(path("nope.bench")), std::runtime_error);
}

TEST_F(FileIoTest, VerilogFileRoundTrip) {
    const Netlist original = make_mini_adder();
    {
        std::ofstream out(path("adder.v"));
        write_verilog(out, original);
    }
    const Netlist back = read_verilog_file(path("adder.v"));
    EXPECT_EQ(back.num_comb_gates(), original.num_comb_gates());
    EXPECT_EQ(back.primary_inputs().size(), original.primary_inputs().size());
}

TEST_F(FileIoTest, VerilogFileMissing) {
    EXPECT_THROW(read_verilog_file(path("nope.v")), std::runtime_error);
}

TEST_F(FileIoTest, SdfFileRoundTrip) {
    const Netlist nl = make_s27();
    const DelayAnnotation ann = DelayAnnotation::with_variation(nl, 0.1, 3);
    {
        std::ofstream out(path("s27.sdf"));
        write_sdf(out, nl, ann);
    }
    std::ifstream in(path("s27.sdf"));
    ASSERT_TRUE(in.good());
    const DelayAnnotation back = read_sdf(in, nl);
    const StaResult a = StaEngine(nl, ann).analyze();
    const StaResult b = StaEngine(nl, back).analyze();
    EXPECT_NEAR(a.critical_path_length, b.critical_path_length, 1e-2);
}

}  // namespace
}  // namespace fastmon
