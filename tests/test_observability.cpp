// Tests of the observability layer: JSON round trips, tracer spans
// (nesting, thread safety, valid Chrome-trace output), metric
// histograms, and the run manifest.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "fault/detection_range.hpp"
#include "util/json.hpp"
#include "util/manifest.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace fastmon {
namespace {

// ---------------------------------------------------------------- Json

TEST(Json, DumpParseRoundTrip) {
    Json doc = Json::object();
    doc.set("name", "s38417");
    doc.set("count", 42);
    doc.set("ratio", 0.25);
    doc.set("flag", true);
    doc.set("nothing", nullptr);
    Json arr = Json::array();
    arr.push_back(1);
    arr.push_back("two");
    arr.push_back(Json::object().set("k", 3.5));
    doc.set("items", std::move(arr));

    for (const int indent : {0, 2}) {
        std::string err;
        const auto parsed = Json::parse(doc.dump(indent), &err);
        ASSERT_TRUE(parsed.has_value()) << err;
        EXPECT_EQ(*parsed, doc);
    }
}

TEST(Json, PreservesInsertionOrder) {
    Json doc = Json::object();
    doc.set("zebra", 1);
    doc.set("apple", 2);
    const std::string text = doc.dump();
    EXPECT_LT(text.find("zebra"), text.find("apple"));
}

TEST(Json, ParseRejectsMalformed) {
    std::string err;
    EXPECT_FALSE(Json::parse("{\"a\": }", &err).has_value());
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(Json::parse("[1, 2", nullptr).has_value());
    EXPECT_FALSE(Json::parse("{} trailing", nullptr).has_value());
}

TEST(Json, EscapesStrings) {
    Json doc = Json::object();
    doc.set("s", "a\"b\\c\nd\te");
    const auto parsed = Json::parse(doc.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("s")->as_string(), "a\"b\\c\nd\te");
}

// -------------------------------------------------------------- Tracer

TEST(Tracer, DisabledSpansRecordNothing) {
    Tracer& t = Tracer::global();
    t.stop();
    t.clear();
    {
        const TraceSpan span("noop", "test");
    }
    EXPECT_EQ(t.num_events(), 0u);
}

TEST(Tracer, NestedSpansRecordInCloseOrder) {
    Tracer& t = Tracer::global();
    t.clear();
    t.start();
    {
        const TraceSpan outer("outer", "test");
        {
            const TraceSpan inner("inner", "test");
        }
    }
    t.stop();
    const Json doc = t.to_json();
    const Json* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->as_array().size(), 2u);
    // Inner closes first; both are complete ("X") events.
    EXPECT_EQ(events->as_array()[0].find("name")->as_string(), "inner");
    EXPECT_EQ(events->as_array()[1].find("name")->as_string(), "outer");
    for (const Json& e : events->as_array()) {
        EXPECT_EQ(e.find("ph")->as_string(), "X");
        EXPECT_GE(e.find("dur")->as_number(), 0.0);
    }
    // The outer span encloses the inner one.
    const double inner_ts = events->as_array()[0].find("ts")->as_number();
    const double outer_ts = events->as_array()[1].find("ts")->as_number();
    EXPECT_LE(outer_ts, inner_ts);
    t.clear();
}

TEST(Tracer, EndIsIdempotent) {
    Tracer& t = Tracer::global();
    t.clear();
    t.start();
    TraceSpan span("once", "test");
    span.end();
    span.end();
    t.stop();
    EXPECT_EQ(t.num_events(), 1u);
    t.clear();
}

TEST(Tracer, SpansFromPoolWorkersAreThreadSafe) {
    Tracer& t = Tracer::global();
    t.clear();
    t.start();
    ThreadPool pool(4);
    ThreadPool::TaskGroup group(pool);
    constexpr int kTasks = 200;
    std::atomic<int> ran{0};
    for (int i = 0; i < kTasks; ++i) {
        group.run([&ran] {
            const TraceSpan span("worker_task", "test");
            ran.fetch_add(1, std::memory_order_relaxed);
        });
    }
    group.wait();
    t.stop();
    EXPECT_EQ(ran.load(), kTasks);
    EXPECT_EQ(t.num_events(), static_cast<std::size_t>(kTasks));
    // The export must still be one valid JSON document.
    const auto parsed = Json::parse(t.to_json().dump());
    ASSERT_TRUE(parsed.has_value());
    t.clear();
}

TEST(Tracer, WriteProducesValidChromeTraceJson) {
    Tracer& t = Tracer::global();
    t.clear();
    t.start();
    {
        const TraceSpan span("phase_a", "test");
    }
    t.counter("queue_depth", 3.0);
    t.stop();
    const std::string path = "test_trace_out.json";
    ASSERT_TRUE(t.write(path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    const auto parsed = Json::parse(buf.str(), &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    const Json* events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->as_array().size(), 2u);
    EXPECT_EQ(events->as_array()[1].find("ph")->as_string(), "C");
    std::remove(path.c_str());
    t.clear();
}

// ------------------------------------------------------------- Metrics

TEST(Metrics, CounterAndGauge) {
    MetricsRegistry reg;
    reg.counter("hits").add(3);
    reg.counter("hits").add(2);
    EXPECT_EQ(reg.counter("hits").value(), 5u);
    reg.gauge("depth").set(7.5);
    reg.gauge("depth").max(3.0);  // lower: ignored
    EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 7.5);
    reg.gauge("depth").max(9.0);
    EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 9.0);
}

TEST(Metrics, HistogramPercentiles) {
    Histogram h;
    for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_NEAR(h.percentile(50.0), 50.5, 1.0);
    EXPECT_NEAR(h.percentile(90.0), 90.0, 1.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
}

TEST(Metrics, HistogramKeepsShapeAtScale) {
    // The sketch backend replaced the old decimating reservoir: no
    // sample is ever dropped, so the shape holds at any stream length
    // within the same tolerances the reservoir test used.
    Histogram h;
    const int n = 16384 * 4;
    for (int i = 0; i < n; ++i) h.record(static_cast<double>(i % 1000));
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(n));
    // Percentiles stay representative of the uniform 0..999 stream.
    EXPECT_NEAR(h.percentile(50.0), 500.0, 60.0);
    EXPECT_NEAR(h.percentile(99.0), 990.0, 15.0);
}

TEST(Metrics, HistogramMergesWorkerSketches) {
    // The campaign folds worker-local QuantileSketches into registry
    // histograms; the merged histogram must match recording the same
    // stream directly.
    Histogram direct;
    QuantileSketch worker_a, worker_b;
    for (int i = 1; i <= 500; ++i) {
        direct.record(static_cast<double>(i));
        (i % 2 == 0 ? worker_a : worker_b)
            .record(static_cast<double>(i));
    }
    Histogram merged;
    merged.merge(worker_a);
    merged.merge(worker_b);
    EXPECT_EQ(merged.count(), direct.count());
    EXPECT_DOUBLE_EQ(merged.min(), direct.min());
    EXPECT_DOUBLE_EQ(merged.max(), direct.max());
    EXPECT_DOUBLE_EQ(merged.percentile(50.0), direct.percentile(50.0));
    EXPECT_DOUBLE_EQ(merged.percentile(99.0), direct.percentile(99.0));
}

TEST(Metrics, ConcurrentCountersFromPool) {
    MetricsRegistry reg;
    Counter& c = reg.counter("parallel");
    ThreadPool pool(4);
    ThreadPool::TaskGroup group(pool);
    constexpr int kTasks = 500;
    for (int i = 0; i < kTasks; ++i) {
        group.run([&c] { c.add(2); });
    }
    group.wait();
    EXPECT_EQ(c.value(), 2u * kTasks);
}

TEST(Metrics, ToJsonIsSortedAndTyped) {
    MetricsRegistry reg;
    reg.counter("b.count").add(1);
    reg.gauge("a.gauge").set(2.5);
    reg.histogram("c.hist").record(4.0);
    const Json j = reg.to_json();
    ASSERT_TRUE(j.is_object());
    const Json* counters = j.find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("b.count"), nullptr);
    EXPECT_DOUBLE_EQ(counters->find("b.count")->as_number(), 1.0);
    const Json* gauges = j.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_DOUBLE_EQ(gauges->find("a.gauge")->as_number(), 2.5);
    const Json* hists = j.find("histograms");
    ASSERT_NE(hists, nullptr);
    const Json* hist = hists->find("c.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 1.0);
    EXPECT_DOUBLE_EQ(hist->find("p50")->as_number(), 4.0);
}

TEST(Metrics, DetectionCountersToJsonCoversEveryField) {
    DetectionCounters c;
    c.pairs_total = 10;
    c.pairs_detected = 4;
    c.analyze_seconds = 0.5;
    const Json j = c.to_json();
    ASSERT_TRUE(j.is_object());
    EXPECT_EQ(j.as_object().size(), 13u);
    EXPECT_DOUBLE_EQ(j.find("pairs_total")->as_number(), 10.0);
    EXPECT_DOUBLE_EQ(j.find("pairs_detected")->as_number(), 4.0);
    EXPECT_DOUBLE_EQ(j.find("analyze_seconds")->as_number(), 0.5);
}

// ------------------------------------------------------------ Manifest

TEST(Manifest, RoundTripThroughJson) {
    RunManifest m;
    m.set_config("seed", 42);
    m.set_config("fmax_factor", 3.0);
    m.set_circuit("name", "s38417");
    m.set_circuit("num_gates", 22179);
    m.add_phase({"sta", 0.125, 0.5});
    m.add_phase({"atpg", 2.0, 7.5});
    m.set_total_wall_seconds(2.5);
    Json metrics = Json::object();
    metrics.set("atpg.backtracks", 17);
    m.set_metrics(std::move(metrics));

    const Json j = m.to_json();
    const auto back = RunManifest::from_json(j);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
    EXPECT_EQ(back->phases().size(), 2u);
    EXPECT_DOUBLE_EQ(back->total_phase_wall_seconds(), 2.125);
    EXPECT_DOUBLE_EQ(back->total_wall_seconds(), 2.5);
}

TEST(Manifest, FromJsonRejectsMissingBlocks) {
    EXPECT_FALSE(RunManifest::from_json(Json::object()).has_value());
    Json half = Json::object();
    half.set("tool", Json::object());
    EXPECT_FALSE(RunManifest::from_json(half).has_value());
}

TEST(Manifest, WriteProducesParsableFile) {
    RunManifest m;
    m.set_config("seed", 1);
    m.add_phase({"sta", 0.1, 0.1});
    m.set_total_wall_seconds(0.1);
    const std::string path = "test_manifest_out.json";
    ASSERT_TRUE(m.write(path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    const auto parsed = Json::parse(buf.str(), &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_NE(parsed->find("tool"), nullptr);
    EXPECT_NE(parsed->find("tool")->find("git"), nullptr);
    std::remove(path.c_str());
}

TEST(Manifest, PhaseStopwatchMeasuresWallAndCpu) {
    const PhaseStopwatch watch;
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i) sink = sink + 1e-9;
    const PhaseTime p = watch.elapsed("busy");
    EXPECT_EQ(p.name, "busy");
    EXPECT_GT(p.wall_seconds, 0.0);
    EXPECT_GE(p.cpu_seconds, 0.0);
    EXPECT_LT(p.wall_seconds, 60.0);
}

}  // namespace
}  // namespace fastmon
