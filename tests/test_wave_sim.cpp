#include "sim/wave_sim.hpp"

#include "timing/sta_engine.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

TEST(WaveSim, ConstantInputsGiveConstantWaves) {
    const Netlist nl = make_s27();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const WaveSim sim(nl, ann);
    const std::size_t n = nl.comb_sources().size();
    const std::vector<Bit> v(n, 1);
    const std::vector<Waveform> waves = sim.simulate(v, v);
    for (GateId id = 0; id < nl.size(); ++id) {
        EXPECT_TRUE(waves[id].is_constant()) << nl.gate(id).name;
    }
}

TEST(WaveSim, SingleInverterDelaysEdge) {
    NetlistBuilder b("inv1");
    b.input("a");
    b.inv("y", "a");
    b.output("y");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const WaveSim sim(nl, ann);
    const std::vector<Bit> v1{0};
    const std::vector<Bit> v2{1};
    const std::vector<Waveform> waves = sim.simulate(v1, v2);
    const GateId y = nl.find("y");
    ASSERT_EQ(waves[y].num_transitions(), 1u);
    // Input rises at 0 -> output falls after the fall delay.
    EXPECT_TRUE(waves[y].initial());
    EXPECT_FALSE(waves[y].final());
    EXPECT_NEAR(waves[y].transitions()[0], ann.arc(y, 0).fall, 1e-9);
}

TEST(WaveSim, ChainAccumulatesDelay) {
    NetlistBuilder b("chain");
    b.input("a");
    b.buf("b1", "a");
    b.buf("b2", "b1");
    b.buf("b3", "b2");
    b.output("b3");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const WaveSim sim(nl, ann);
    const std::vector<Bit> v1{0};
    const std::vector<Bit> v2{1};
    const std::vector<Waveform> waves = sim.simulate(v1, v2);
    const GateId b3 = nl.find("b3");
    ASSERT_EQ(waves[b3].num_transitions(), 1u);
    Time expect = 0.0;
    expect += ann.arc(nl.find("b1"), 0).rise;
    expect += ann.arc(nl.find("b2"), 0).rise;
    expect += ann.arc(nl.find("b3"), 0).rise;
    EXPECT_NEAR(waves[b3].transitions()[0], expect, 1e-9);
}

TEST(WaveSim, StaticHazardProducesGlitchWithoutFilter) {
    // Classic XOR hazard: a -> xor(a, inv(a)); unequal path delays make
    // the output pulse once on an input edge.
    NetlistBuilder b("hazard");
    b.input("a");
    b.inv("n", "a");
    b.buf("d1", "a");
    b.buf("d2", "d1");
    b.xor2("y", "d2", "n");
    b.output("y");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    WaveSimConfig raw;
    raw.inertial_fraction = 0.0;  // keep all pulses
    const WaveSim sim(nl, ann, raw);
    const std::vector<Bit> v1{0};
    const std::vector<Bit> v2{1};
    const std::vector<Waveform> waves = sim.simulate(v1, v2);
    const GateId y = nl.find("y");
    // XOR(delayed a, !a): both steady states are 1; the mismatch window
    // produces a 1->0->1 glitch: two transitions.
    EXPECT_TRUE(waves[y].initial());
    EXPECT_TRUE(waves[y].final());
    EXPECT_EQ(waves[y].num_transitions(), 2u);
}

TEST(WaveSim, InertialFilterSwallowsGlitch) {
    NetlistBuilder b("hazard2");
    b.input("a");
    b.inv("n", "a");
    b.xor2("y", "a", "n");  // minimal skew: tiny pulse
    b.output("y");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    WaveSimConfig strong;
    strong.inertial_fraction = 1.0;
    const WaveSim sim(nl, ann, strong);
    const std::vector<Bit> v1{0};
    const std::vector<Bit> v2{1};
    const std::vector<Waveform> waves = sim.simulate(v1, v2);
    const GateId y = nl.find("y");
    EXPECT_EQ(waves[y].num_transitions(), 0u);
}

TEST(WaveSim, FinalValuesMatchLogicSim) {
    const Netlist nl = generate_circuit(
        GeneratorConfig{"ws_gen", 400, 40, 12, 12, 12, 0.6, 21});
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const WaveSim wave_sim(nl, ann);
    const LogicSim logic_sim(nl);
    Prng rng(77);
    const std::size_t n = nl.comb_sources().size();
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<Bit> v1(n);
        std::vector<Bit> v2(n);
        for (std::size_t s = 0; s < n; ++s) {
            v1[s] = rng.chance(0.5) ? 1 : 0;
            v2[s] = rng.chance(0.5) ? 1 : 0;
        }
        const std::vector<Waveform> waves = wave_sim.simulate(v1, v2);
        const std::vector<Bit> initial = logic_sim.eval(v1);
        const std::vector<Bit> final_values = logic_sim.eval(v2);
        for (GateId id = 0; id < nl.size(); ++id) {
            EXPECT_EQ(waves[id].initial(), initial[id] != 0)
                << "initial of " << nl.gate(id).name;
            EXPECT_EQ(waves[id].final(), final_values[id] != 0)
                << "final of " << nl.gate(id).name;
        }
    }
}

TEST(WaveSim, SettleTimesRespectSta) {
    const Netlist nl = generate_circuit(
        GeneratorConfig{"ws_sta", 500, 50, 12, 12, 14, 0.5, 22});
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const WaveSim sim(nl, ann);
    Prng rng(78);
    const std::size_t n = nl.comb_sources().size();
    std::vector<Bit> v1(n);
    std::vector<Bit> v2(n);
    for (std::size_t s = 0; s < n; ++s) {
        v1[s] = rng.chance(0.5) ? 1 : 0;
        v2[s] = rng.chance(0.5) ? 1 : 0;
    }
    const std::vector<Waveform> waves = sim.simulate(v1, v2);
    for (GateId id = 0; id < nl.size(); ++id) {
        // No signal settles after its STA max arrival.
        EXPECT_LE(waves[id].settle_time(), sta.max_arrival[id] + 1e-6)
            << nl.gate(id).name;
        // And no transition happens before the STA min arrival.
        if (waves[id].num_transitions() > 0 &&
            is_combinational(nl.gate(id).type)) {
            EXPECT_GE(waves[id].transitions()[0],
                      sta.min_arrival[id] - 1e-6)
                << nl.gate(id).name;
        }
    }
}

TEST(WaveSim, InertialThresholdScalesWithConfig) {
    const Netlist nl = make_s27();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const WaveSim a(nl, ann, WaveSimConfig{0.4});
    const WaveSim b(nl, ann, WaveSimConfig{0.8});
    const WaveSim off(nl, ann, WaveSimConfig{0.0});
    const GateId g = nl.find("G9");
    EXPECT_NEAR(b.inertial_threshold(g), 2.0 * a.inertial_threshold(g), 1e-9);
    EXPECT_DOUBLE_EQ(off.inertial_threshold(g), 0.0);
}

}  // namespace
}  // namespace fastmon
