#include "sim/fault_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/generator.hpp"
#include "timing/sta_engine.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

// a -> buf -> y (observed): the simplest fault propagation path.
struct BufFixture {
    Netlist nl;
    DelayAnnotation ann;
    WaveSim sim;
    FaultSim fsim;

    BufFixture()
        : nl(NetlistBuilder("buf1")
                 .input("a")
                 .buf("g", "a")
                 .output("g")
                 .build()),
          ann(DelayAnnotation::nominal(nl)),
          sim(nl, ann),
          fsim(sim) {}
};

TEST(FaultSim, OutputFaultShiftsEdgeByDelta) {
    BufFixture f;
    const GateId g = f.nl.find("g");
    const std::vector<Bit> v1{0};
    const std::vector<Bit> v2{1};
    const auto good = f.sim.simulate(v1, v2);

    DelayFault fault;
    fault.site = FaultSite{g, FaultSite::kOutputPin};
    fault.slow_rising = true;
    fault.delta = 7.5;
    const auto diffs = f.fsim.simulate(fault, good);
    ASSERT_EQ(diffs.size(), 1u);
    // Difference window: exactly [t_good_edge, t_good_edge + delta).
    const Time edge = good[g].transitions()[0];
    const IntervalSet ones = diffs[0].diff.ones(1000.0);
    ASSERT_EQ(ones.size(), 1u);
    EXPECT_NEAR(ones[0].lo, edge, 1e-9);
    EXPECT_NEAR(ones[0].hi, edge + 7.5, 1e-9);
}

TEST(FaultSim, WrongPolarityNotActivated) {
    BufFixture f;
    const GateId g = f.nl.find("g");
    const std::vector<Bit> v1{0};
    const std::vector<Bit> v2{1};
    const auto good = f.sim.simulate(v1, v2);

    DelayFault fault;
    fault.site = FaultSite{g, FaultSite::kOutputPin};
    fault.slow_rising = false;  // slow-to-fall, but the edge rises
    fault.delta = 7.5;
    EXPECT_FALSE(f.fsim.activated(fault, good));
    EXPECT_TRUE(f.fsim.simulate(fault, good).empty());
}

TEST(FaultSim, InputPinFaultOnlyAffectsThatBranch) {
    // a fans out to two buffers; the fault on one branch leaves the
    // other path clean.
    NetlistBuilder b("branch");
    b.input("a");
    b.buf("p", "a");
    b.buf("q", "a");
    b.output("p");
    b.output("q");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const WaveSim sim(nl, ann);
    const FaultSim fsim(sim);
    const std::vector<Bit> v1{0};
    const std::vector<Bit> v2{1};
    const auto good = sim.simulate(v1, v2);

    DelayFault fault;
    fault.site = FaultSite{nl.find("p"), 0};  // branch a->p
    fault.slow_rising = true;
    fault.delta = 5.0;
    const auto diffs = fsim.simulate(fault, good);
    ASSERT_EQ(diffs.size(), 1u);
    const auto ops = nl.observe_points();
    EXPECT_EQ(ops[diffs[0].observe_index].signal, nl.find("p"));
}

TEST(FaultSim, StemFaultAffectsAllBranches) {
    NetlistBuilder b("stem");
    b.input("a");
    b.inv("s", "a");
    b.buf("p", "s");
    b.buf("q", "s");
    b.output("p");
    b.output("q");
    const Netlist nl = b.build();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const WaveSim sim(nl, ann);
    const FaultSim fsim(sim);
    const std::vector<Bit> v1{1};
    const std::vector<Bit> v2{0};  // a falls -> s rises
    const auto good = sim.simulate(v1, v2);

    DelayFault fault;
    fault.site = FaultSite{nl.find("s"), FaultSite::kOutputPin};
    fault.slow_rising = true;
    fault.delta = 6.0;
    const auto diffs = fsim.simulate(fault, good);
    EXPECT_EQ(diffs.size(), 2u);
}

TEST(FaultSim, DeltaZeroProducesNoDifference) {
    BufFixture f;
    const std::vector<Bit> v1{0};
    const std::vector<Bit> v2{1};
    const auto good = f.sim.simulate(v1, v2);
    DelayFault fault;
    fault.site = FaultSite{f.nl.find("g"), FaultSite::kOutputPin};
    fault.slow_rising = true;
    fault.delta = 0.0;
    EXPECT_TRUE(f.fsim.simulate(fault, good).empty());
}

// Properties of the difference waveforms.  Note that a measure bound of
// edges * delta would be UNSOUND: inertial pulse swallowing downstream
// can amplify a shifted edge into a much longer disagreement, and the
// faulty circuit can glitch where the good output was quiet.  What must
// hold: the difference starts no earlier than the first slow-direction
// edge at the site, and ends no later than the STA maximum arrival at
// the output plus delta (a single lumped fault retards any path at most
// once).
class FaultSimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSimProperty, DifferenceWindowBounds) {
    GeneratorConfig gc;
    gc.name = "fs_gen";
    gc.n_gates = 250;
    gc.n_ffs = 25;
    gc.n_inputs = 10;
    gc.n_outputs = 10;
    gc.depth = 10;
    gc.spread = 0.5;
    gc.seed = GetParam();
    const Netlist nl = generate_circuit(gc);
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const WaveSim sim(nl, ann);
    const FaultSim fsim(sim);
    Prng rng(GetParam() * 3 + 1);
    const std::size_t n = nl.comb_sources().size();
    std::vector<Bit> v1(n);
    std::vector<Bit> v2(n);
    for (std::size_t s = 0; s < n; ++s) {
        v1[s] = rng.chance(0.5) ? 1 : 0;
        v2[s] = rng.chance(0.5) ? 1 : 0;
    }
    const auto good = sim.simulate(v1, v2);

    for (int k = 0; k < 40; ++k) {
        const GateId gate =
            static_cast<GateId>(rng.next_below(nl.size()));
        if (!is_combinational(nl.gate(gate).type)) continue;
        DelayFault fault;
        fault.site = FaultSite{gate, FaultSite::kOutputPin};
        fault.slow_rising = rng.chance(0.5);
        fault.delta = rng.uniform(1.0, 40.0);
        const auto diffs = fsim.simulate(fault, good);
        if (!fsim.activated(fault, good)) {
            EXPECT_TRUE(diffs.empty());
            continue;
        }
        // Earliest possible divergence: the first slow-direction edge at
        // the site signal.
        Time first_slow_edge = std::numeric_limits<Time>::max();
        bool value = good[gate].initial();
        for (Time t : good[gate].transitions()) {
            value = !value;
            if (value == fault.slow_rising) {
                first_slow_edge = t;
                break;
            }
        }
        const auto ops = nl.observe_points();
        for (const ObserveDiff& od : diffs) {
            const IntervalSet ones = od.diff.ones(1e6);
            ASSERT_FALSE(ones.empty());
            EXPECT_GE(ones.min(), first_slow_edge - 1e-6)
                << "gate " << nl.gate(gate).name;
            const Time latest =
                sta.max_arrival[ops[od.observe_index].signal];
            EXPECT_LE(ones.max(), latest + fault.delta + 1e-6)
                << "gate " << nl.gate(gate).name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSimProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// Property: fault simulation via cone overlay equals full re-simulation
// with a modified annotation (for output-pin faults, slowing a gate's
// arcs in the slow direction by delta is NOT identical in general, but
// a brute-force overlay re-simulation of the full circuit must match).
class ConeVsFullResim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConeVsFullResim, OverlayMatchesFullResimulation) {
    GeneratorConfig gc;
    gc.name = "cone_gen";
    gc.n_gates = 200;
    gc.n_ffs = 20;
    gc.n_inputs = 8;
    gc.n_outputs = 8;
    gc.depth = 9;
    gc.spread = 0.5;
    gc.seed = GetParam() + 100;
    const Netlist nl = generate_circuit(gc);
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const WaveSim sim(nl, ann);
    const FaultSim fsim(sim);
    Prng rng(GetParam() * 7 + 5);
    const std::size_t n = nl.comb_sources().size();
    std::vector<Bit> v1(n);
    std::vector<Bit> v2(n);
    for (std::size_t s = 0; s < n; ++s) {
        v1[s] = rng.chance(0.5) ? 1 : 0;
        v2[s] = rng.chance(0.5) ? 1 : 0;
    }
    const auto good = sim.simulate(v1, v2);

    // Full re-simulation: evaluate every gate with the faulty waveform
    // overlay (no cone shortcut).
    auto full_resim = [&](const DelayFault& fault) {
        std::vector<Waveform> faulty(nl.size(), Waveform::constant(false));
        std::vector<const Waveform*> fanin_waves;
        for (GateId id : nl.topo_order()) {
            const Gate& g = nl.gate(id);
            const std::uint32_t src = nl.source_index(id);
            if (src != std::numeric_limits<std::uint32_t>::max()) {
                faulty[id] = good[id];
                continue;
            }
            Waveform pin_wave;
            fanin_waves.clear();
            for (std::uint32_t p = 0; p < g.fanin.size(); ++p) {
                fanin_waves.push_back(&faulty[g.fanin[p]]);
            }
            if (fault.site.gate == id &&
                fault.site.pin != FaultSite::kOutputPin) {
                pin_wave = faulty[g.fanin[fault.site.pin]].with_slowed_edges(
                    fault.slow_rising, fault.delta);
                fanin_waves[fault.site.pin] = &pin_wave;
            }
            faulty[id] = sim.eval_gate(id, fanin_waves);
            if (fault.site.gate == id &&
                fault.site.pin == FaultSite::kOutputPin) {
                faulty[id] = faulty[id].with_slowed_edges(fault.slow_rising,
                                                          fault.delta);
            }
        }
        return faulty;
    };

    for (int k = 0; k < 15; ++k) {
        const GateId gate = static_cast<GateId>(rng.next_below(nl.size()));
        const Gate& g = nl.gate(gate);
        if (!is_combinational(g.type)) continue;
        DelayFault fault;
        const bool on_input = rng.chance(0.5) && !g.fanin.empty();
        fault.site = FaultSite{
            gate, on_input ? static_cast<std::uint32_t>(
                                 rng.next_below(g.fanin.size()))
                           : FaultSite::kOutputPin};
        fault.slow_rising = rng.chance(0.5);
        fault.delta = rng.uniform(2.0, 30.0);

        const auto expected = full_resim(fault);
        const auto diffs = fsim.simulate(fault, good);
        // Build the diff map from the full re-simulation.
        const auto ops = nl.observe_points();
        std::vector<Waveform> expect_diffs;
        for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
            const Waveform x =
                Waveform::xor_of(good[ops[oi].signal], expected[ops[oi].signal]);
            if (!x.is_constant() || x.initial()) {
                expect_diffs.push_back(x);
            }
        }
        ASSERT_EQ(diffs.size(), expect_diffs.size());
        for (std::size_t d = 0; d < diffs.size(); ++d) {
            EXPECT_EQ(diffs[d].diff, expect_diffs[d]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConeVsFullResim,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace fastmon
