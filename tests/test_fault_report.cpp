#include "fault/fault_report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "flow/hdf_flow.hpp"
#include "netlist/iscas_data.hpp"

namespace fastmon {
namespace {

TEST(FaultReport, ClassNames) {
    EXPECT_EQ(to_string(StructuralClass::AtSpeedDetectable), "at-speed");
    EXPECT_EQ(to_string(StructuralClass::TimingRedundant), "redundant");
    EXPECT_EQ(to_string(StructuralClass::Candidate), "candidate");
}

TEST(FaultReport, CsvHasOneRowPerFault) {
    const Netlist nl = make_s27();
    HdfFlowConfig config;
    config.seed = 12;
    config.monitor_fraction = 0.5;
    config.atpg.max_random_batches = 20;
    HdfFlow flow(nl, config);
    flow.prepare();

    std::ostringstream os2;
    StructuralClassifyConfig scc;
    scc.fmax_factor = config.fmax_factor;
    scc.max_monitor_delay = flow.placement().max_delay();
    scc.monitored_observe = flow.placement().monitored;
    const StructuralClassification cls = classify_structural(
        nl, flow.delays(), flow.sta(), flow.universe(), scc);
    write_fault_report_csv(os2, nl, flow.universe(), cls,
                           flow.simulated_faults(), flow.ranges());
    const std::string out = os2.str();
    // Header + one line per fault.
    const std::size_t lines =
        static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n'));
    EXPECT_EQ(lines, flow.universe().size() + 1);
    EXPECT_NE(out.find("fault,site,direction"), std::string::npos);
    EXPECT_NE(out.find("STR"), std::string::npos);
    EXPECT_NE(out.find("at-speed"), std::string::npos);
    EXPECT_NE(out.find("G11/out"), std::string::npos);
}

}  // namespace
}  // namespace fastmon
