// Flow-level fault injection: every scenario arms a FaultInjector
// point (the same hooks FASTMON_FAULT_INJECT reaches from the
// environment) and asserts the flow terminates with an honest,
// well-formed status — degraded or failed, never a crash, never a
// silently-complete lie.
#include "flow/hdf_flow.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "netlist/bench_io.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"
#include "opt/set_cover.hpp"
#include "util/cancel.hpp"
#include "util/diagnostic.hpp"
#include "util/fault_inject.hpp"

namespace fastmon {
namespace {

HdfFlowConfig small_config() {
    HdfFlowConfig config;
    config.seed = 5;
    config.atpg.max_random_batches = 30;
    config.atpg.max_idle_batches = 4;
    config.solver.time_limit_sec = 3.0;
    return config;
}

/// Injection points and the cancel token are process-wide; every test
/// must leave them pristine for the rest of the suite (the detection
/// engine shares a global pool — a stale cancelled token would drain
/// every later simulation to nothing).
class ResilienceTest : public ::testing::Test {
protected:
    const Netlist s27_ = make_s27();

    void SetUp() override {
        CancelToken::global().reset();
        FaultInjector::global().reset();
    }
    void TearDown() override {
        CancelToken::global().reset();
        FaultInjector::global().reset();
    }
};

TEST_F(ResilienceTest, ParserInjectionThrowsThroughNormalErrorPath) {
    FaultInjector::global().arm("parser.bench");
    try {
        (void)read_bench_string("INPUT(G1)\nOUTPUT(G1)\n", "inj");
        FAIL() << "expected InjectedFault";
    } catch (const InjectedFault& e) {
        EXPECT_EQ(e.point(), "parser.bench");
    }
    // One-shot: the parser works again immediately after.
    EXPECT_NO_THROW(
        (void)read_bench_string("INPUT(G1)\nOUTPUT(G1)\n", "inj"));
}

TEST_F(ResilienceTest, InjectedFaultIsARuntimeError) {
    // Call sites that recover from organic parser/solver failures via
    // catch (std::runtime_error) recover from injected ones the same way.
    FaultInjector::global().arm("parser.pattern");
    bool caught = false;
    try {
        throw InjectedFault("parser.pattern");
    } catch (const std::runtime_error&) {
        caught = true;
    }
    EXPECT_TRUE(caught);
}

TEST_F(ResilienceTest, SolverBudgetInjectionFallsBackToGreedy) {
    // Classic greedy trap: optimal cover is 2 sets, greedy takes 3.
    // With the budget injected to zero the solver must still return a
    // feasible cover — just an unproven one.
    SetCoverInstance inst;
    inst.num_elements = 6;
    inst.sets = {{0, 1, 2, 3}, {0, 1, 4}, {2, 3, 5}, {4}, {5}};
    FaultInjector::global().arm("solver.budget");
    const SetCoverResult r = solve_set_cover(inst);
    EXPECT_TRUE(r.feasible);
    EXPECT_FALSE(r.proven_optimal);
    EXPECT_GE(r.chosen.size(), 2u);
    // Injection is one-shot: the next solve proves optimality again.
    const SetCoverResult clean = solve_set_cover(inst);
    EXPECT_TRUE(clean.proven_optimal);
    EXPECT_EQ(clean.chosen.size(), 2u);
}

TEST_F(ResilienceTest, SolverBudgetInjectionKeepsFlowComplete) {
    // Budget exhaustion is graceful degradation inside the solver, not
    // a phase failure: the flow still completes with a valid schedule.
    FaultInjector::global().arm("solver.budget");
    HdfFlow flow(s27_, small_config());
    const HdfFlowResult r = flow.run();
    EXPECT_TRUE(r.status.complete());
    EXPECT_EQ(r.schedule_uncovered, 0u);
    EXPECT_GE(r.detected_prop, r.detected_conv);
}

TEST_F(ResilienceTest, PoolTaskExceptionFailsPhaseNotFlow) {
    FaultInjector::global().arm("pool.task");
    HdfFlowConfig config = small_config();
    config.num_threads = 2;  // dedicated pool -> first task is pass A
    HdfFlow flow(s27_, config);
    const HdfFlowResult r = flow.run();
    // fault_sim_pass_a is non-essential: the injected task exception is
    // recorded as a phase failure and the flow carries on with empty
    // detection ranges instead of crashing.
    const PhaseStatus* pass_a = r.status.find("fault_sim_pass_a");
    ASSERT_NE(pass_a, nullptr);
    EXPECT_EQ(pass_a->outcome, PhaseOutcome::Failed);
    EXPECT_NE(pass_a->detail.find("injected fault"), std::string::npos);
    EXPECT_FALSE(r.status.complete());
    // All phases still accounted for — nothing silently vanished.
    EXPECT_GE(r.status.phases.size(), 11u);
}

TEST_F(ResilienceTest, MidSimulationCancellationDegradesHonestly) {
    FaultInjector::global().arm("cancel.fault_sim_mid");
    HdfFlow flow(s27_, small_config());
    const HdfFlowResult r = flow.run();
    EXPECT_TRUE(r.status.cancelled);
    EXPECT_EQ(r.status.cancel_cause, CancelCause::Test);
    EXPECT_FALSE(r.status.complete());
    EXPECT_STREQ(r.status.overall(), "degraded");
    const PhaseStatus* pass_a = r.status.find("fault_sim_pass_a");
    ASSERT_NE(pass_a, nullptr);
    EXPECT_EQ(pass_a->outcome, PhaseOutcome::Degraded);
    // Phases before the cancellation point completed normally.
    const PhaseStatus* sta = r.status.find("sta");
    ASSERT_NE(sta, nullptr);
    EXPECT_EQ(sta->outcome, PhaseOutcome::Ok);
}

TEST_F(ResilienceTest, PhaseEntryCancellationDegradesLaterPhases) {
    FaultInjector::global().arm("cancel.freq_select");
    HdfFlow flow(s27_, small_config());
    const HdfFlowResult r = flow.run();
    EXPECT_TRUE(r.status.cancelled);
    EXPECT_EQ(r.status.cancel_cause, CancelCause::Test);
    // Everything up to and including table1 ran before the injection.
    for (const char* name : {"sta", "monitor_placement", "classify",
                             "fault_sim_pass_a", "table1"}) {
        const PhaseStatus* p = r.status.find(name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_EQ(p->outcome, PhaseOutcome::Ok) << name;
    }
    // freq_select itself and everything after it is degraded or
    // skipped, never reported Ok.
    for (const char* name :
         {"freq_select", "fault_sim_pass_b", "pattern_config_select",
          "coverage_rows"}) {
        const PhaseStatus* p = r.status.find(name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_NE(p->outcome, PhaseOutcome::Ok) << name;
    }
}

TEST_F(ResilienceTest, EssentialPhaseFailureThrowsFlowError) {
    // STA polls the cancel token every few thousand nodes, so a
    // circuit comfortably above the stride turns a phase-entry
    // cancellation into a CancelledError inside the essential phase.
    GeneratorConfig gc;
    gc.name = "resilience_sta";
    gc.n_gates = 6000;
    gc.n_ffs = 200;
    gc.n_inputs = 32;
    gc.n_outputs = 32;
    gc.depth = 30;
    gc.spread = 0.7;
    gc.seed = 91;
    const Netlist nl = generate_circuit(gc);
    FaultInjector::global().arm("cancel.sta");
    HdfFlow flow(nl, small_config());
    try {
        flow.prepare();
        FAIL() << "expected FlowError";
    } catch (const FlowError& e) {
        EXPECT_EQ(e.phase(), "sta");
        EXPECT_NE(std::string(e.what()).find("sta"), std::string::npos);
    }
    // The status block names the failed phase before the throw.
    const PhaseStatus* sta = flow.status().find("sta");
    ASSERT_NE(sta, nullptr);
    EXPECT_EQ(sta->outcome, PhaseOutcome::Failed);
    EXPECT_TRUE(flow.status().cancelled);
}

TEST_F(ResilienceTest, FlowErrorNamesItsPhase) {
    const FlowError e("monitor_placement", "no pseudo outputs");
    EXPECT_EQ(e.phase(), "monitor_placement");
    EXPECT_STREQ(e.what(),
                 "flow phase 'monitor_placement' failed: no pseudo outputs");
}

TEST_F(ResilienceTest, CancelledRunLeavesWellFormedManifestSnapshot) {
    const std::string path = "test_resilience_manifest.json";
    FaultInjector::global().arm("cancel.fault_sim_mid");
    HdfFlowConfig config = small_config();
    config.manifest_path = path;
    HdfFlow flow(s27_, config);
    const HdfFlowResult r = flow.run();
    ASSERT_TRUE(r.status.cancelled);

    // The snapshot on disk parses, round-trips, and tells the truth.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    in.close();
    Json doc;
    ASSERT_NO_THROW(doc = parse_json_or_throw(text, path));
    const auto manifest = RunManifest::from_json(doc);
    ASSERT_TRUE(manifest.has_value());

    const Json& status = manifest->status();
    ASSERT_FALSE(status.is_null());
    ASSERT_NE(status.find("outcome"), nullptr);
    EXPECT_EQ(status.find("outcome")->as_string(), "degraded");
    ASSERT_NE(status.find("cancelled"), nullptr);
    EXPECT_TRUE(status.find("cancelled")->as_bool());
    ASSERT_NE(status.find("cancel_cause"), nullptr);
    EXPECT_EQ(status.find("cancel_cause")->as_string(), "test");
    ASSERT_NE(status.find("phases"), nullptr);
    const JsonArray& phases = status.find("phases")->as_array();
    EXPECT_GE(phases.size(), 11u);
    for (const Json& p : phases) {
        ASSERT_NE(p.find("name"), nullptr);
        ASSERT_NE(p.find("outcome"), nullptr);
    }
    // No torn .partial left behind by the atomic snapshot writes.
    EXPECT_FALSE(std::ifstream(path + ".partial").good());
    std::remove(path.c_str());
}

TEST_F(ResilienceTest, EnvSpecArmsInjectionPoints) {
    // The same grammar FASTMON_FAULT_INJECT uses from the environment.
    ASSERT_TRUE(
        FaultInjector::global().arm_spec("cancel.fault_sim_mid,parser.sdf"));
    HdfFlow flow(s27_, small_config());
    const HdfFlowResult r = flow.run();
    EXPECT_TRUE(r.status.cancelled);
    EXPECT_FALSE(r.status.complete());
}

TEST_F(ResilienceTest, CleanRunReportsCompleteStatus) {
    // Control: with nothing armed the status block is all-Ok, so the
    // degradation machinery provably does not tax a healthy run.
    HdfFlow flow(s27_, small_config());
    const HdfFlowResult r = flow.run();
    EXPECT_TRUE(r.status.complete());
    EXPECT_STREQ(r.status.overall(), "ok");
    EXPECT_FALSE(r.status.cancelled);
    EXPECT_EQ(r.status.cancel_cause, CancelCause::None);
    ASSERT_EQ(r.status.phases.size(), 11u);
    for (const PhaseStatus& p : r.status.phases) {
        EXPECT_EQ(p.outcome, PhaseOutcome::Ok) << p.name;
        EXPECT_TRUE(p.detail.empty()) << p.name << ": " << p.detail;
    }
    // Degraded/complete state also round-trips through the manifest.
    const RunManifest m = flow.manifest(r);
    ASSERT_FALSE(m.status().is_null());
    EXPECT_EQ(m.status().find("outcome")->as_string(), "ok");
}

}  // namespace
}  // namespace fastmon
