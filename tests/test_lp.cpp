#include "opt/lp.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace fastmon {
namespace {

LpRow row(std::vector<std::pair<std::uint32_t, double>> coeffs, double rhs) {
    LpRow r;
    r.coeffs = std::move(coeffs);
    r.rhs = rhs;
    return r;
}

TEST(Lp, TrivialSingleVariable) {
    // min x  s.t.  x >= 3.
    LpProblem p;
    p.num_vars = 1;
    p.objective = {1.0};
    p.rows.push_back(row({{0, 1.0}}, 3.0));
    const LpSolution s = solve_lp(p);
    ASSERT_EQ(s.status, LpStatus::Optimal);
    EXPECT_NEAR(s.objective, 3.0, 1e-6);
    EXPECT_NEAR(s.x[0], 3.0, 1e-6);
}

TEST(Lp, TwoVariableCover) {
    // min x0 + x1  s.t.  x0 + x1 >= 1, x0 >= 0.25.
    LpProblem p;
    p.num_vars = 2;
    p.objective = {1.0, 1.0};
    p.rows.push_back(row({{0, 1.0}, {1, 1.0}}, 1.0));
    p.rows.push_back(row({{0, 1.0}}, 0.25));
    const LpSolution s = solve_lp(p);
    ASSERT_EQ(s.status, LpStatus::Optimal);
    EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(Lp, DetectsInfeasibility) {
    // x >= 2 and -x >= -1 (x <= 1) is infeasible.
    LpProblem p;
    p.num_vars = 1;
    p.objective = {1.0};
    p.rows.push_back(row({{0, 1.0}}, 2.0));
    p.rows.push_back(row({{0, -1.0}}, -1.0));
    EXPECT_EQ(solve_lp(p).status, LpStatus::Infeasible);
}

TEST(Lp, DetectsUnbounded) {
    // min -x  s.t.  x >= 0 (implicit): unbounded below.
    LpProblem p;
    p.num_vars = 1;
    p.objective = {-1.0};
    const LpSolution s = solve_lp(p);
    EXPECT_EQ(s.status, LpStatus::Unbounded);
}

TEST(Lp, BoxedMaximization) {
    // min -x0 - 2x1  s.t.  -x0 >= -4, -x1 >= -3 (x0 <= 4, x1 <= 3).
    LpProblem p;
    p.num_vars = 2;
    p.objective = {-1.0, -2.0};
    p.rows.push_back(row({{0, -1.0}}, -4.0));
    p.rows.push_back(row({{1, -1.0}}, -3.0));
    const LpSolution s = solve_lp(p);
    ASSERT_EQ(s.status, LpStatus::Optimal);
    EXPECT_NEAR(s.objective, -10.0, 1e-6);
    EXPECT_NEAR(s.x[0], 4.0, 1e-6);
    EXPECT_NEAR(s.x[1], 3.0, 1e-6);
}

TEST(Lp, KnownDietStyleProblem) {
    // min 2x + 3y  s.t.  x + y >= 4, x + 3y >= 6.
    // Optimum at intersection: x = 3, y = 1 -> 9.
    LpProblem p;
    p.num_vars = 2;
    p.objective = {2.0, 3.0};
    p.rows.push_back(row({{0, 1.0}, {1, 1.0}}, 4.0));
    p.rows.push_back(row({{0, 1.0}, {1, 3.0}}, 6.0));
    const LpSolution s = solve_lp(p);
    ASSERT_EQ(s.status, LpStatus::Optimal);
    EXPECT_NEAR(s.objective, 9.0, 1e-6);
}

TEST(Lp, EmptyProblemFeasible) {
    LpProblem p;
    p.num_vars = 0;
    EXPECT_EQ(solve_lp(p).status, LpStatus::Optimal);
    LpRow impossible;
    impossible.rhs = 1.0;
    p.rows.push_back(impossible);
    EXPECT_EQ(solve_lp(p).status, LpStatus::Infeasible);
}

TEST(Lp, RedundantRowsHarmless) {
    LpProblem p;
    p.num_vars = 1;
    p.objective = {1.0};
    p.rows.push_back(row({{0, 1.0}}, 2.0));
    p.rows.push_back(row({{0, 1.0}}, 2.0));
    p.rows.push_back(row({{0, 2.0}}, 4.0));
    const LpSolution s = solve_lp(p);
    ASSERT_EQ(s.status, LpStatus::Optimal);
    EXPECT_NEAR(s.x[0], 2.0, 1e-6);
}

// Property: on random cover LPs the solution is feasible and the
// objective lower-bounds the greedy integer cover.
class LpCoverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpCoverProperty, FractionalCoverIsFeasibleLowerBound) {
    Prng rng(GetParam() * 13 + 5);
    const std::size_t n_sets = 12;
    const std::size_t n_elems = 20;
    std::vector<std::vector<std::uint32_t>> sets(n_sets);
    // Element 'e' covered by set e % n_sets plus random extras, so full
    // cover always exists.
    std::vector<std::vector<std::uint32_t>> covers(n_elems);
    for (std::uint32_t e = 0; e < n_elems; ++e) {
        covers[e].push_back(e % n_sets);
        for (int k = 0; k < 2; ++k) {
            covers[e].push_back(
                static_cast<std::uint32_t>(rng.next_below(n_sets)));
        }
        for (std::uint32_t s : covers[e]) sets[s].push_back(e);
    }
    LpProblem p;
    p.num_vars = n_sets;
    p.objective.assign(n_sets, 1.0);
    for (std::uint32_t e = 0; e < n_elems; ++e) {
        LpRow r;
        r.rhs = 1.0;
        std::sort(covers[e].begin(), covers[e].end());
        covers[e].erase(std::unique(covers[e].begin(), covers[e].end()),
                        covers[e].end());
        for (std::uint32_t s : covers[e]) r.coeffs.emplace_back(s, 1.0);
        p.rows.push_back(r);
    }
    const LpSolution s = solve_lp(p);
    ASSERT_EQ(s.status, LpStatus::Optimal);
    // Feasibility of the fractional solution.
    for (const LpRow& r : p.rows) {
        double lhs = 0.0;
        for (const auto& [j, c] : r.coeffs) lhs += c * s.x[j];
        EXPECT_GE(lhs, r.rhs - 1e-6);
    }
    // The LP bound is between 1 and the number of sets.
    EXPECT_GE(s.objective, 1.0 - 1e-6);
    EXPECT_LE(s.objective, static_cast<double>(n_sets) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpCoverProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace fastmon
