#include "netlist/cell_library.hpp"

#include <gtest/gtest.h>

namespace fastmon {
namespace {

TEST(CellLibrary, NamesRoundTrip) {
    EXPECT_EQ(cell_type_name(CellType::Nand), "NAND");
    EXPECT_EQ(cell_type_name(CellType::Dff), "DFF");
    EXPECT_EQ(cell_type_name(CellType::Inv), "NOT");
}

TEST(CellLibrary, InterfaceClassification) {
    EXPECT_TRUE(is_interface(CellType::Input));
    EXPECT_TRUE(is_interface(CellType::Output));
    EXPECT_TRUE(is_interface(CellType::Dff));
    EXPECT_FALSE(is_interface(CellType::Nand));
    EXPECT_TRUE(is_combinational(CellType::Xor));
    EXPECT_FALSE(is_combinational(CellType::Dff));
}

TEST(CellLibrary, ArityBounds) {
    EXPECT_EQ(min_arity(CellType::Inv), 1u);
    EXPECT_EQ(max_arity(CellType::Inv), 1u);
    EXPECT_EQ(min_arity(CellType::Nand), 2u);
    EXPECT_EQ(max_arity(CellType::Nand), 8u);
    EXPECT_EQ(min_arity(CellType::Mux2), 3u);
    EXPECT_EQ(max_arity(CellType::Mux2), 3u);
    EXPECT_EQ(min_arity(CellType::Input), 0u);
}

TEST(CellLibrary, EvalBasicGates) {
    const bool ff[] = {false, false};
    const bool ft[] = {false, true};
    const bool tt[] = {true, true};
    EXPECT_FALSE(eval_cell(CellType::And, ft));
    EXPECT_TRUE(eval_cell(CellType::And, tt));
    EXPECT_TRUE(eval_cell(CellType::Nand, ft));
    EXPECT_FALSE(eval_cell(CellType::Nand, tt));
    EXPECT_TRUE(eval_cell(CellType::Or, ft));
    EXPECT_FALSE(eval_cell(CellType::Or, ff));
    EXPECT_TRUE(eval_cell(CellType::Nor, ff));
    EXPECT_TRUE(eval_cell(CellType::Xor, ft));
    EXPECT_FALSE(eval_cell(CellType::Xor, tt));
    EXPECT_TRUE(eval_cell(CellType::Xnor, tt));
    const bool one[] = {true};
    EXPECT_FALSE(eval_cell(CellType::Inv, one));
    EXPECT_TRUE(eval_cell(CellType::Buf, one));
}

TEST(CellLibrary, EvalComplexGates) {
    // MUX: inputs (sel, a, b).
    const bool sel0[] = {false, true, false};
    const bool sel1[] = {true, true, false};
    EXPECT_TRUE(eval_cell(CellType::Mux2, sel0));
    EXPECT_FALSE(eval_cell(CellType::Mux2, sel1));
    // AOI21: !((a & b) | c).
    const bool aoi_a[] = {true, true, false};
    const bool aoi_b[] = {true, false, false};
    EXPECT_FALSE(eval_cell(CellType::Aoi21, aoi_a));
    EXPECT_TRUE(eval_cell(CellType::Aoi21, aoi_b));
    // OAI21: !((a | b) & c).
    const bool oai_a[] = {true, false, true};
    const bool oai_b[] = {false, false, true};
    EXPECT_FALSE(eval_cell(CellType::Oai21, oai_a));
    EXPECT_TRUE(eval_cell(CellType::Oai21, oai_b));
}

// Property: eval_cell64 agrees with eval_cell on every lane.
class Eval64Property : public ::testing::TestWithParam<CellType> {};

TEST_P(Eval64Property, MatchesScalarEval) {
    const CellType type = GetParam();
    const std::uint32_t arity = min_arity(type);
    // Enumerate all input combinations across lanes.
    std::vector<std::uint64_t> words(arity, 0);
    const std::uint32_t combos = 1u << arity;
    for (std::uint32_t m = 0; m < combos; ++m) {
        for (std::uint32_t i = 0; i < arity; ++i) {
            if ((m >> i) & 1) words[i] |= 1ULL << m;
        }
    }
    const std::uint64_t out = eval_cell64(type, words);
    for (std::uint32_t m = 0; m < combos; ++m) {
        bool ins[8];
        for (std::uint32_t i = 0; i < arity; ++i) ins[i] = ((m >> i) & 1) != 0;
        const bool expect =
            eval_cell(type, std::span<const bool>(ins, arity));
        EXPECT_EQ(((out >> m) & 1) != 0, expect)
            << cell_type_name(type) << " combo " << m;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, Eval64Property,
    ::testing::Values(CellType::Buf, CellType::Inv, CellType::And,
                      CellType::Nand, CellType::Or, CellType::Nor,
                      CellType::Xor, CellType::Xnor, CellType::Mux2,
                      CellType::Aoi21, CellType::Oai21));

TEST(CellLibrary, DelaysArePositiveAndPinOrdered) {
    const CellLibrary& lib = CellLibrary::nangate45();
    for (CellType type : {CellType::Buf, CellType::Inv, CellType::And,
                          CellType::Nand, CellType::Or, CellType::Nor,
                          CellType::Xor, CellType::Xnor, CellType::Mux2,
                          CellType::Aoi21, CellType::Oai21}) {
        const std::uint32_t arity = min_arity(type);
        Time prev = 0.0;
        for (std::uint32_t pin = 0; pin < arity; ++pin) {
            const PinDelay d = lib.nominal_delay(type, arity, pin);
            EXPECT_GT(d.rise, 0.0);
            EXPECT_GT(d.fall, 0.0);
            // Later pins are not faster (stack position effect).
            EXPECT_GE(d.rise + d.fall, prev);
            prev = d.rise + d.fall;
        }
    }
}

TEST(CellLibrary, WiderGatesAreSlower) {
    const CellLibrary& lib = CellLibrary::nangate45();
    const PinDelay d2 = lib.nominal_delay(CellType::Nand, 2, 0);
    const PinDelay d4 = lib.nominal_delay(CellType::Nand, 4, 0);
    EXPECT_GT(d4.rise, d2.rise);
    EXPECT_GT(d4.fall, d2.fall);
}

TEST(CellLibrary, InverterIsFastest) {
    const CellLibrary& lib = CellLibrary::nangate45();
    EXPECT_GT(lib.min_gate_delay(), 0.0);
    const PinDelay inv = lib.nominal_delay(CellType::Inv, 1, 0);
    EXPECT_LE(lib.min_gate_delay(), std::min(inv.rise, inv.fall));
}

TEST(CellLibrary, SequentialParameters) {
    const CellLibrary& lib = CellLibrary::nangate45();
    EXPECT_GT(lib.dff_clk_to_q(), 0.0);
    EXPECT_GT(lib.dff_setup(), 0.0);
    EXPECT_GT(lib.load_delay_per_fanout(), 0.0);
}

}  // namespace
}  // namespace fastmon
