#include "util/interval.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace fastmon {
namespace {

TEST(Interval, EmptyAndLength) {
    EXPECT_TRUE((Interval{5.0, 5.0}).empty());
    EXPECT_TRUE((Interval{5.0, 4.0}).empty());
    EXPECT_FALSE((Interval{1.0, 2.0}).empty());
    EXPECT_DOUBLE_EQ((Interval{1.0, 3.5}).length(), 2.5);
    EXPECT_DOUBLE_EQ((Interval{3.0, 1.0}).length(), 0.0);
}

TEST(Interval, ContainsIsHalfOpen) {
    const Interval iv{1.0, 2.0};
    EXPECT_TRUE(iv.contains(1.0));
    EXPECT_TRUE(iv.contains(1.5));
    EXPECT_FALSE(iv.contains(2.0));
    EXPECT_FALSE(iv.contains(0.999));
}

TEST(IntervalSet, AddMergesOverlapping) {
    IntervalSet s;
    s.add(1.0, 2.0);
    s.add(3.0, 4.0);
    s.add(1.5, 3.5);  // bridges both
    ASSERT_EQ(s.size(), 1u);
    EXPECT_DOUBLE_EQ(s[0].lo, 1.0);
    EXPECT_DOUBLE_EQ(s[0].hi, 4.0);
}

TEST(IntervalSet, AddMergesTouching) {
    IntervalSet s;
    s.add(1.0, 2.0);
    s.add(2.0, 3.0);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_DOUBLE_EQ(s[0].hi, 3.0);
}

TEST(IntervalSet, AddKeepsDisjoint) {
    IntervalSet s;
    s.add(1.0, 2.0);
    s.add(3.0, 4.0);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s.measure(), 2.0);
}

TEST(IntervalSet, EmptyIntervalIgnored) {
    IntervalSet s;
    s.add(2.0, 2.0);
    s.add(5.0, 1.0);
    EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, UniteMatchesSequentialAdds) {
    IntervalSet a{{1.0, 2.0}, {5.0, 6.0}};
    IntervalSet b{{1.5, 5.5}, {7.0, 8.0}};
    IntervalSet u = IntervalSet::united(a, b);
    IntervalSet expect;
    expect.add(1.0, 6.0);
    expect.add(7.0, 8.0);
    EXPECT_EQ(u, expect);
}

TEST(IntervalSet, ClipKeepsInnerPart) {
    IntervalSet s{{0.0, 10.0}, {20.0, 30.0}};
    s.clip(5.0, 25.0);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0].lo, 5.0);
    EXPECT_DOUBLE_EQ(s[0].hi, 10.0);
    EXPECT_DOUBLE_EQ(s[1].lo, 20.0);
    EXPECT_DOUBLE_EQ(s[1].hi, 25.0);
}

TEST(IntervalSet, ShiftModelsMonitorDelay) {
    IntervalSet s{{1.0, 2.0}, {4.0, 5.0}};
    s.shift(10.0);
    EXPECT_DOUBLE_EQ(s[0].lo, 11.0);
    EXPECT_DOUBLE_EQ(s[1].hi, 15.0);
    s.shift(-10.0);
    EXPECT_DOUBLE_EQ(s[0].lo, 1.0);
}

TEST(IntervalSet, GlitchFilterDropsShortKeepsDisjoint) {
    // Fig. 1 of the paper: the short interval is dropped; the adjacent
    // intervals are NOT merged across the former glitch.
    IntervalSet s{{0.0, 5.0}, {5.5, 5.8}, {6.0, 12.0}};
    s.filter_glitches(1.0);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0].hi, 5.0);
    EXPECT_DOUBLE_EQ(s[1].lo, 6.0);
}

TEST(IntervalSet, ContainsBinarySearch) {
    IntervalSet s{{1.0, 2.0}, {4.0, 6.0}, {9.0, 9.5}};
    EXPECT_TRUE(s.contains(1.0));
    EXPECT_FALSE(s.contains(2.0));
    EXPECT_TRUE(s.contains(5.0));
    EXPECT_FALSE(s.contains(7.0));
    EXPECT_TRUE(s.contains(9.2));
    EXPECT_FALSE(s.contains(100.0));
    EXPECT_FALSE(s.contains(-1.0));
}

TEST(IntervalSet, IntersectsDetectsOverlap) {
    IntervalSet a{{1.0, 2.0}, {5.0, 6.0}};
    IntervalSet b{{2.0, 5.0}};
    EXPECT_FALSE(a.intersects(b));  // touching only
    IntervalSet c{{1.9, 2.1}};
    EXPECT_TRUE(a.intersects(c));
    EXPECT_TRUE(c.intersects(a));
}

TEST(IntervalSet, IntersectedValue) {
    IntervalSet a{{0.0, 10.0}};
    IntervalSet b{{2.0, 3.0}, {8.0, 12.0}};
    IntervalSet i = IntervalSet::intersected(a, b);
    ASSERT_EQ(i.size(), 2u);
    EXPECT_DOUBLE_EQ(i[1].hi, 10.0);
}

TEST(IntervalSet, MinMaxMeasure) {
    IntervalSet s{{3.0, 4.0}, {1.0, 2.0}};
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.measure(), 2.0);
}

// Property: shift distributes over union — the identity that makes the
// aggregated monitor analysis of Sec. III-B valid.
class IntervalShiftProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalShiftProperty, ShiftDistributesOverUnion) {
    Prng rng(GetParam());
    IntervalSet a;
    IntervalSet b;
    for (int i = 0; i < 12; ++i) {
        const Time lo = rng.uniform(0.0, 100.0);
        a.add(lo, lo + rng.uniform(0.1, 10.0));
        const Time lo2 = rng.uniform(0.0, 100.0);
        b.add(lo2, lo2 + rng.uniform(0.1, 10.0));
    }
    const Time d = rng.uniform(0.5, 30.0);
    IntervalSet lhs = IntervalSet::united(a, b);
    lhs.shift(d);
    IntervalSet sa = a;
    sa.shift(d);
    IntervalSet sb = b;
    sb.shift(d);
    const IntervalSet rhs = IntervalSet::united(sa, sb);
    EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalShiftProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

// Property: union is idempotent/commutative and measure subadditive.
class IntervalUnionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalUnionProperty, UnionAlgebra) {
    Prng rng(GetParam() * 977);
    IntervalSet a;
    IntervalSet b;
    for (int i = 0; i < 20; ++i) {
        const Time lo = rng.uniform(0.0, 50.0);
        a.add(lo, lo + rng.uniform(0.01, 5.0));
        const Time lo2 = rng.uniform(0.0, 50.0);
        b.add(lo2, lo2 + rng.uniform(0.01, 5.0));
    }
    EXPECT_EQ(IntervalSet::united(a, b), IntervalSet::united(b, a));
    EXPECT_EQ(IntervalSet::united(a, a), a);
    EXPECT_LE(IntervalSet::united(a, b).measure(),
              a.measure() + b.measure() + 1e-9);
    EXPECT_GE(IntervalSet::united(a, b).measure(),
              std::max(a.measure(), b.measure()) - 1e-9);
    // Invariant: disjoint sorted representation.
    const IntervalSet u = IntervalSet::united(a, b);
    for (std::size_t i = 1; i < u.size(); ++i) {
        EXPECT_LT(u[i - 1].hi, u[i].lo);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalUnionProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

// Property: contains(t) after clip agrees with containment-and-window.
class IntervalClipProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalClipProperty, ClipPreservesMembership) {
    Prng rng(GetParam() * 31337);
    IntervalSet s;
    for (int i = 0; i < 15; ++i) {
        const Time lo = rng.uniform(0.0, 80.0);
        s.add(lo, lo + rng.uniform(0.05, 8.0));
    }
    const Time lo = rng.uniform(0.0, 40.0);
    const Time hi = lo + rng.uniform(1.0, 40.0);
    IntervalSet clipped = s;
    clipped.clip(lo, hi);
    for (int k = 0; k < 200; ++k) {
        const Time t = rng.uniform(-5.0, 95.0);
        const bool expect = s.contains(t) && t >= lo && t < hi;
        EXPECT_EQ(clipped.contains(t), expect) << "t=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalClipProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace fastmon
