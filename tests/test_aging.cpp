#include "monitor/aging.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "netlist/iscas_data.hpp"
#include "timing/sta_engine.hpp"

namespace fastmon {
namespace {

TEST(AgingModel, FactorMonotoneAndAnchored) {
    AgingModel m;
    m.amplitude = 0.2;
    m.exponent = 0.3;
    m.t_ref_years = 10.0;
    EXPECT_DOUBLE_EQ(m.factor(0.0), 1.0);
    EXPECT_DOUBLE_EQ(m.factor(-3.0), 1.0);
    EXPECT_NEAR(m.factor(10.0), 1.2, 1e-12);
    double prev = 1.0;
    for (double y = 0.5; y <= 20.0; y += 0.5) {
        const double f = m.factor(y);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(AgingModel, PowTermIsZeroAtAndBeforeDeployment) {
    AgingModel m;
    m.amplitude = 0.2;
    m.exponent = 0.3;
    m.t_ref_years = 10.0;
    // years <= 0 must be exactly 0.0 for every exponent: pow(0, n)
    // raises domain errors for n < 0 and pow(negative, 0.3) is NaN, so
    // the mission-profile path (which queries tau = 0 at deployment)
    // relies on the explicit guard.
    EXPECT_EQ(m.pow_term(0.0), 0.0);
    EXPECT_EQ(m.pow_term(-5.0), 0.0);
    EXPECT_EQ(m.pow_term(std::numeric_limits<double>::quiet_NaN()), 0.0);
    AgingModel inverse = m;
    inverse.exponent = -0.5;
    EXPECT_EQ(inverse.pow_term(0.0), 0.0);
    EXPECT_TRUE(std::isfinite(inverse.pow_term(0.0)));
    // The factor identity holds bit-for-bit on the positive branch...
    for (double y : {0.25, 1.0, 7.5, 10.0, 14.75}) {
        EXPECT_EQ(m.factor(y), 1.0 + m.amplitude * m.pow_term(y));
    }
    // ...and anchors at exactly 1 at t_ref and 1.0 flat before t = 0.
    EXPECT_DOUBLE_EQ(m.pow_term(10.0), 1.0);
    EXPECT_EQ(m.factor(-1.0), 1.0);
}

TEST(AgingModel, SublinearExponentFrontLoads) {
    AgingModel m;
    m.amplitude = 0.2;
    m.exponent = 0.25;
    // More than half of the 10-year degradation lands in year one.
    EXPECT_GT(m.factor(1.0) - 1.0, 0.5 * (m.factor(10.0) - 1.0));
}

TEST(MarginalDefect, GrowsAndSaturates) {
    MarginalDefect d;
    d.delta0 = 2.0;
    d.growth_per_year = 1.0;
    d.delta_max = 20.0;
    EXPECT_NEAR(d.delta_at(0.0), 2.0, 1e-12);
    EXPECT_GT(d.delta_at(1.0), d.delta_at(0.5));
    EXPECT_DOUBLE_EQ(d.delta_at(10.0), 20.0);  // saturated
    MarginalDefect unbounded = d;
    unbounded.delta_max = 0.0;
    EXPECT_GT(unbounded.delta_at(10.0), 20.0);
}

TEST(MarginalDefect, ExtremeHorizonsStayFinite) {
    // exp(growth * years) overflows to inf around year ~700 at unit
    // growth; the campaign engine sweeps arbitrary user horizons, so
    // the growth law must saturate instead.
    MarginalDefect d;
    d.delta0 = 2.0;
    d.growth_per_year = 1.0;
    d.delta_max = 20.0;
    EXPECT_DOUBLE_EQ(d.delta_at(1e6), 20.0);
    EXPECT_DOUBLE_EQ(d.delta_at(std::numeric_limits<double>::max()), 20.0);

    MarginalDefect unbounded = d;
    unbounded.delta_max = 0.0;
    const double extreme = unbounded.delta_at(1e6);
    EXPECT_TRUE(std::isfinite(extreme));
    EXPECT_GT(extreme, 1e100);
    // Negative horizons are treated as t = 0, not as decay.
    EXPECT_DOUBLE_EQ(d.delta_at(-3.0), 2.0);
}

struct AgingFixture : ::testing::Test {
    Netlist nl = make_mini_alu();
    DelayAnnotation base = DelayAnnotation::nominal(nl);
    StaResult sta = StaEngine(nl, base, 1.6).analyze();
    MonitorPlacement placement = place_paper_monitors(nl, sta);
    AgingModel aging{0.5, 1.0, 10.0};
};

TEST_F(AgingFixture, DegradationIncreasesArrival) {
    LifetimeSimulator sim(nl, base, sta.clock_period, aging, 1);
    const LifetimePoint p0 = sim.evaluate(0.0, placement);
    const LifetimePoint p5 = sim.evaluate(5.0, placement);
    const LifetimePoint p10 = sim.evaluate(10.0, placement);
    EXPECT_LT(p0.worst_arrival, p5.worst_arrival);
    EXPECT_LT(p5.worst_arrival, p10.worst_arrival);
    EXPECT_GE(p0.worst_arrival, p0.worst_monitored_arrival - 1e-9);
}

TEST_F(AgingFixture, AlertsAreMonotoneInWindowWidth) {
    LifetimeSimulator sim(nl, base, sta.clock_period, aging, 1);
    for (double y : {0.0, 2.0, 5.0, 8.0, 11.0}) {
        const LifetimePoint p = sim.evaluate(y, placement);
        // If a narrow window alerts, every wider one must too.
        for (std::size_t c = 2; c < p.alerts.size(); ++c) {
            if (p.alerts[c - 1]) {
                EXPECT_TRUE(p.alerts[c])
                    << "year " << y << " config " << c;
            }
        }
        EXPECT_FALSE(p.alerts[0]);  // off-config never alerts
    }
}

TEST_F(AgingFixture, WideWindowAlertsBeforeNarrowBeforeFailure) {
    LifetimeSimulator sim(nl, base, sta.clock_period, aging, 1);
    std::vector<double> grid;
    for (double y = 0.0; y <= 14.0; y += 0.1) grid.push_back(y);
    const std::vector<double> first = sim.first_alert_years(grid, placement);
    ASSERT_EQ(first.size(), placement.config_delays.size());
    EXPECT_LT(first[0], 0.0);  // off never alerts
    // Wider windows alert earlier (or at the same grid step).
    for (std::size_t c = 2; c < first.size(); ++c) {
        if (first[c - 1] >= 0.0 && first[c] >= 0.0) {
            EXPECT_LE(first[c], first[c - 1]);
        }
    }
    // Failure year: first grid point with timing failure must come
    // after the widest window's first alert.
    double failure = -1.0;
    for (const LifetimePoint& p : sim.sweep(grid, placement)) {
        if (p.timing_failure) {
            failure = p.years;
            break;
        }
    }
    ASSERT_GE(failure, 0.0) << "50% degradation must eventually fail";
    EXPECT_LT(first.back(), failure);
}

TEST_F(AgingFixture, DefectAcceleratesAlerts) {
    LifetimeSimulator healthy(nl, base, sta.clock_period, aging, 1);
    LifetimeSimulator marginal(nl, base, sta.clock_period, aging, 1);
    MarginalDefect defect;
    defect.site =
        FaultSite{nl.observe_points()[placement.monitor_observes[0]].signal,
                  FaultSite::kOutputPin};
    defect.delta0 = 0.05 * sta.clock_period;
    defect.growth_per_year = 1.0;
    marginal.add_defect(defect);
    std::vector<double> grid;
    for (double y = 0.0; y <= 12.0; y += 0.25) grid.push_back(y);
    const auto fh = healthy.first_alert_years(grid, placement);
    const auto fm = marginal.first_alert_years(grid, placement);
    // The widest window alerts earlier on the marginal device.
    ASSERT_GE(fh.back(), 0.0);
    ASSERT_GE(fm.back(), 0.0);
    EXPECT_LT(fm.back(), fh.back());
}

TEST_F(AgingFixture, DegradedAnnotationScalesArcs) {
    LifetimeSimulator sim(nl, base, sta.clock_period, aging, 1);
    const DelayAnnotation aged = sim.degraded(10.0);
    for (GateId id = 0; id < nl.size(); ++id) {
        const Gate& g = nl.gate(id);
        if (!is_combinational(g.type)) continue;
        for (std::uint32_t p = 0; p < g.fanin.size(); ++p) {
            // Rate jitter is within [0.5, 1.5] of the nominal aging.
            const double ratio = aged.arc(id, p).rise / base.arc(id, p).rise;
            EXPECT_GE(ratio, 1.0 + 0.5 * 0.5 - 1e-9);
            EXPECT_LE(ratio, 1.0 + 0.5 * 1.5 + 1e-9);
        }
    }
}

}  // namespace
}  // namespace fastmon
