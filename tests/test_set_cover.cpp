#include "opt/set_cover.hpp"

#include <cmath>

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace fastmon {
namespace {

SetCoverInstance make_instance(std::uint32_t n_elems,
                               std::vector<std::vector<std::uint32_t>> sets) {
    SetCoverInstance inst;
    inst.num_elements = n_elems;
    inst.sets = std::move(sets);
    for (auto& s : inst.sets) std::sort(s.begin(), s.end());
    return inst;
}

TEST(SetCover, GreedyCoversEverything) {
    const SetCoverInstance inst =
        make_instance(4, {{0, 1}, {2}, {3}, {0, 1, 2}});
    const SetCoverResult r = greedy_set_cover(inst);
    EXPECT_TRUE(r.feasible);
    EXPECT_EQ(r.covered_weight, 4u);
}

TEST(SetCover, ExactBeatsGreedyOnClassicTrap) {
    // Classic greedy trap: elements 0..5; the big "trap" set {0,1,2,3}
    // attracts greedy, forcing 3 sets, while {0,1,4} + {2,3,5} cover in 2.
    const SetCoverInstance inst = make_instance(
        6, {{0, 1, 2, 3}, {0, 1, 4}, {2, 3, 5}, {4}, {5}});
    const SetCoverResult greedy = greedy_set_cover(inst);
    const SetCoverResult exact = solve_set_cover(inst);
    EXPECT_TRUE(exact.feasible);
    EXPECT_TRUE(exact.proven_optimal);
    EXPECT_EQ(exact.chosen.size(), 2u);
    EXPECT_GE(greedy.chosen.size(), exact.chosen.size());
}

TEST(SetCover, UncoverableElementMakesFullCoverInfeasible) {
    const SetCoverInstance inst = make_instance(3, {{0}, {1}});
    const SetCoverResult r = solve_set_cover(inst);
    EXPECT_FALSE(r.feasible);
    // Partial cover of 2/3 is fine.
    SetCoverOptions opt;
    opt.coverage = 0.66;
    const SetCoverResult partial = solve_set_cover(inst, opt);
    EXPECT_TRUE(partial.feasible);
}

TEST(SetCover, EssentialSetsAreForced) {
    // Element 3 only in set 2; sets 0/1 redundant after set 2 chosen.
    const SetCoverInstance inst =
        make_instance(4, {{0, 1}, {1, 2}, {0, 1, 2, 3}});
    const SetCoverResult r = solve_set_cover(inst);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.chosen, (std::vector<std::uint32_t>{2}));
}

TEST(SetCover, WeightedPartialCover) {
    SetCoverInstance inst = make_instance(3, {{0}, {1}, {2}});
    inst.element_weight = {100, 1, 1};
    SetCoverOptions opt;
    opt.coverage = 0.9;  // target ceil(0.9 * 102) = 92
    const SetCoverResult r = solve_set_cover(inst, opt);
    ASSERT_TRUE(r.feasible);
    // The heavy element alone reaches the target: one set.
    EXPECT_EQ(r.chosen.size(), 1u);
    EXPECT_EQ(r.chosen[0], 0u);
    EXPECT_EQ(r.covered_weight, 100u);
    // At 100 % every set is needed.
    SetCoverOptions full;
    const SetCoverResult rf = solve_set_cover(inst, full);
    ASSERT_TRUE(rf.feasible);
    EXPECT_EQ(rf.chosen.size(), 3u);
}

TEST(SetCover, PartialCoverPicksHeavyElements) {
    SetCoverInstance inst = make_instance(4, {{0}, {1}, {2}, {3}});
    inst.element_weight = {10, 10, 10, 70};
    SetCoverOptions opt;
    opt.coverage = 0.7;  // target 70
    const SetCoverResult r = solve_set_cover(inst, opt);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.chosen, (std::vector<std::uint32_t>{3}));
}

TEST(SetCover, IlpFormulationAgrees) {
    const SetCoverInstance inst = make_instance(
        6, {{0, 1, 2, 3}, {0, 1, 4}, {2, 3, 5}, {4}, {5}});
    const IlpProblem p = set_cover_to_ilp(inst);
    const IlpSolution s = solve_01_ilp(p);
    const SetCoverResult r = solve_set_cover(inst);
    ASSERT_TRUE(s.feasible);
    ASSERT_TRUE(r.feasible);
    EXPECT_NEAR(s.objective, static_cast<double>(r.chosen.size()), 1e-9);
}

/// Brute-force minimal full cover.
std::size_t brute_cover(const SetCoverInstance& inst) {
    const std::size_t n = inst.sets.size();
    std::size_t best = SIZE_MAX;
    for (std::uint32_t m = 0; m < (1u << n); ++m) {
        std::vector<bool> covered(inst.num_elements, false);
        std::size_t count = 0;
        for (std::size_t s = 0; s < n; ++s) {
            if ((m >> s) & 1) {
                ++count;
                for (std::uint32_t e : inst.sets[s]) covered[e] = true;
            }
        }
        if (std::all_of(covered.begin(), covered.end(),
                        [](bool b) { return b; })) {
            best = std::min(best, count);
        }
    }
    return best;
}

// Property: exact solver matches brute force on random instances.
class SetCoverBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SetCoverBruteForce, MatchesExhaustive) {
    Prng rng(GetParam() * 41 + 3);
    for (int instance = 0; instance < 15; ++instance) {
        const std::uint32_t n_elems = 10 + static_cast<std::uint32_t>(
                                               rng.next_below(8));
        const std::size_t n_sets = 8 + rng.next_below(5);
        SetCoverInstance inst;
        inst.num_elements = n_elems;
        inst.sets.resize(n_sets);
        for (std::uint32_t e = 0; e < n_elems; ++e) {
            // Ensure coverability.
            inst.sets[e % n_sets].push_back(e);
            inst.sets[rng.next_below(n_sets)].push_back(e);
        }
        for (auto& s : inst.sets) {
            std::sort(s.begin(), s.end());
            s.erase(std::unique(s.begin(), s.end()), s.end());
        }
        const std::size_t bf = brute_cover(inst);
        const SetCoverResult r = solve_set_cover(inst);
        ASSERT_TRUE(r.feasible);
        ASSERT_TRUE(r.proven_optimal);
        EXPECT_EQ(r.chosen.size(), bf) << "instance " << instance;
        // Validate the cover.
        std::vector<bool> covered(n_elems, false);
        for (std::uint32_t s : r.chosen) {
            for (std::uint32_t e : inst.sets[s]) covered[e] = true;
        }
        EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                                [](bool b) { return b; }));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetCoverBruteForce,
                         ::testing::Range<std::uint64_t>(1, 11));

/// Brute-force minimal partial cover by weight.
std::size_t brute_partial(const SetCoverInstance& inst, double coverage) {
    const std::size_t n = inst.sets.size();
    const auto target = static_cast<std::uint64_t>(
        std::ceil(coverage * static_cast<double>(inst.total_weight()) - 1e-9));
    std::size_t best = SIZE_MAX;
    for (std::uint32_t m = 0; m < (1u << n); ++m) {
        std::vector<bool> covered(inst.num_elements, false);
        std::size_t count = 0;
        for (std::size_t s = 0; s < n; ++s) {
            if ((m >> s) & 1) {
                ++count;
                for (std::uint32_t e : inst.sets[s]) covered[e] = true;
            }
        }
        std::uint64_t w = 0;
        for (std::uint32_t e = 0; e < inst.num_elements; ++e) {
            if (covered[e]) w += inst.weight_of(e);
        }
        if (w >= target) best = std::min(best, count);
    }
    return best;
}

class PartialCoverBruteForce : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PartialCoverBruteForce, MatchesExhaustive) {
    Prng rng(GetParam() * 97 + 11);
    for (int instance = 0; instance < 10; ++instance) {
        const std::uint32_t n_elems = 12;
        const std::size_t n_sets = 9;
        SetCoverInstance inst;
        inst.num_elements = n_elems;
        inst.sets.resize(n_sets);
        inst.element_weight.resize(n_elems);
        for (std::uint32_t e = 0; e < n_elems; ++e) {
            inst.element_weight[e] =
                1 + static_cast<std::uint32_t>(rng.next_below(9));
            inst.sets[rng.next_below(n_sets)].push_back(e);
            inst.sets[rng.next_below(n_sets)].push_back(e);
        }
        for (auto& s : inst.sets) {
            std::sort(s.begin(), s.end());
            s.erase(std::unique(s.begin(), s.end()), s.end());
        }
        for (double coverage : {0.9, 0.75, 0.5}) {
            SetCoverOptions opt;
            opt.coverage = coverage;
            const std::size_t bf = brute_partial(inst, coverage);
            const SetCoverResult r = solve_set_cover(inst, opt);
            ASSERT_TRUE(r.feasible) << coverage;
            if (r.proven_optimal) {
                EXPECT_EQ(r.chosen.size(), bf)
                    << "instance " << instance << " cov " << coverage;
            } else {
                EXPECT_GE(r.chosen.size(), bf);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialCoverBruteForce,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(SetCover, BudgetFallsBackToGreedy) {
    Prng rng(17);
    SetCoverInstance inst;
    inst.num_elements = 200;
    inst.sets.resize(60);
    for (std::uint32_t e = 0; e < inst.num_elements; ++e) {
        for (int k = 0; k < 3; ++k) {
            inst.sets[rng.next_below(60)].push_back(e);
        }
    }
    for (auto& s : inst.sets) {
        std::sort(s.begin(), s.end());
        s.erase(std::unique(s.begin(), s.end()), s.end());
    }
    SetCoverOptions opt;
    opt.max_nodes = 2;
    opt.time_limit_sec = 0.01;
    const SetCoverResult r = solve_set_cover(inst, opt);
    // Still feasible (greedy incumbent), but not proven optimal.
    if (greedy_set_cover(inst).feasible) {
        EXPECT_TRUE(r.feasible);
        EXPECT_FALSE(r.proven_optimal);
    }
}

}  // namespace
}  // namespace fastmon
