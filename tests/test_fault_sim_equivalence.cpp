// Randomized differential test of the fault-simulation engine's fast
// path (bit-parallel activation screen + cone cache + dense overlay +
// thread pool) against a naive reference that re-simulates the entire
// circuit for every (fault, pattern) pair with no screening at all.
// The engine promises bit-identical results regardless of worker count.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "fault/detection_range.hpp"
#include "netlist/generator.hpp"
#include "timing/sta_engine.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

struct Scenario {
    Netlist nl;
    DelayAnnotation ann;
    StaResult sta;
    WaveSim sim;
    std::vector<PatternPair> patterns;
    std::vector<DelayFault> faults;
    std::vector<bool> monitored;
    DetectionAnalysisConfig dac;  // num_threads left at default

    explicit Scenario(std::uint64_t seed)
        : nl([&] {
              GeneratorConfig gc;
              gc.name = "equiv_gen";
              gc.n_gates = 220;
              gc.n_ffs = 24;
              gc.n_inputs = 10;
              gc.n_outputs = 10;
              gc.depth = 9;
              gc.spread = 0.5;
              gc.seed = seed + 900;
              return generate_circuit(gc);
          }()),
          ann(DelayAnnotation::nominal(nl)),
          sta(StaEngine(nl, ann).analyze()),
          sim(nl, ann) {
        Prng rng(seed * 13 + 3);
        const std::size_t n = nl.comb_sources().size();
        patterns.resize(12);
        for (auto& p : patterns) {
            p.v1.resize(n);
            p.v2.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
                p.v1[i] = rng.chance(0.5) ? 1 : 0;
                p.v2[i] = rng.chance(0.5) ? 1 : 0;
            }
        }
        // Patterns with v1 == v2 stress the screen's hazard handling:
        // the static values never toggle, but glitches still can.
        patterns.push_back(patterns.front());
        patterns.back().v2 = patterns.back().v1;

        for (int k = 0; k < 60; ++k) {
            const GateId gate =
                static_cast<GateId>(rng.next_below(nl.size()));
            const Gate& g = nl.gate(gate);
            if (!is_combinational(g.type)) continue;
            DelayFault fault;
            const bool on_input = rng.chance(0.5) && !g.fanin.empty();
            fault.site = FaultSite{
                gate, on_input ? static_cast<std::uint32_t>(
                                     rng.next_below(g.fanin.size()))
                               : FaultSite::kOutputPin};
            fault.slow_rising = rng.chance(0.5);
            fault.delta = rng.uniform(2.0, 30.0);
            faults.push_back(fault);
        }

        monitored.assign(nl.observe_points().size(), false);
        for (std::size_t i = 0; i < monitored.size(); i += 3) {
            monitored[i] = true;
        }

        dac.glitch_threshold = ann.glitch_threshold();
        dac.horizon = sta.clock_period * 1.02;
    }

    /// Full-circuit faulty re-simulation, no cone shortcut.
    [[nodiscard]] std::vector<Waveform> full_resim(
        const DelayFault& fault,
        std::span<const Waveform> good) const {
        std::vector<Waveform> faulty(nl.size(), Waveform::constant(false));
        std::vector<const Waveform*> fanin_waves;
        for (GateId id : nl.topo_order()) {
            const Gate& g = nl.gate(id);
            const std::uint32_t src = nl.source_index(id);
            if (src != std::numeric_limits<std::uint32_t>::max()) {
                faulty[id] = good[id];
                continue;
            }
            Waveform pin_wave;
            fanin_waves.clear();
            for (std::uint32_t p = 0; p < g.fanin.size(); ++p) {
                fanin_waves.push_back(&faulty[g.fanin[p]]);
            }
            if (fault.site.gate == id &&
                fault.site.pin != FaultSite::kOutputPin) {
                pin_wave =
                    faulty[g.fanin[fault.site.pin]].with_slowed_edges(
                        fault.slow_rising, fault.delta);
                fanin_waves[fault.site.pin] = &pin_wave;
            }
            faulty[id] = sim.eval_gate(id, fanin_waves);
            if (fault.site.gate == id &&
                fault.site.pin == FaultSite::kOutputPin) {
                faulty[id] = faulty[id].with_slowed_edges(
                    fault.slow_rising, fault.delta);
            }
        }
        return faulty;
    }

    /// Reference analyze(): every pair fully re-simulated, no screen,
    /// no activation check, no cache, no pool.
    [[nodiscard]] std::vector<FaultRanges> reference_analyze() const {
        std::vector<FaultRanges> result(faults.size());
        const auto ops = nl.observe_points();
        for (std::uint32_t pi = 0; pi < patterns.size(); ++pi) {
            const auto good =
                sim.simulate(patterns[pi].v1, patterns[pi].v2);
            for (std::uint32_t fi = 0; fi < faults.size(); ++fi) {
                const auto faulty = full_resim(faults[fi], good);
                IntervalSet ff;
                IntervalSet sr;
                for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
                    const Waveform diff = Waveform::xor_of(
                        good[ops[oi].signal], faulty[ops[oi].signal]);
                    if (diff.is_constant() && !diff.initial()) continue;
                    IntervalSet ivals = diff.ones(dac.horizon);
                    ivals.filter_glitches(dac.glitch_threshold);
                    if (ivals.empty()) continue;
                    ff.unite(ivals);
                    if (monitored[oi]) sr.unite(ivals);
                }
                if (ff.empty() && sr.empty()) continue;
                result[fi].ff.unite(ff);
                result[fi].sr.unite(sr);
                result[fi].active_patterns.push_back(pi);
            }
        }
        return result;
    }
};

void expect_ranges_equal(std::span<const FaultRanges> got,
                         std::span<const FaultRanges> want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].ff, want[i].ff) << "fault " << i;
        EXPECT_EQ(got[i].sr, want[i].sr) << "fault " << i;
        EXPECT_EQ(got[i].active_patterns, want[i].active_patterns)
            << "fault " << i;
    }
}

class FaultSimEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSimEquivalence, FastPathMatchesNaiveReference) {
    const Scenario sc(GetParam());
    const std::vector<FaultRanges> want = sc.reference_analyze();

    for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                      std::size_t{3}}) {
        DetectionAnalysisConfig dac = sc.dac;
        dac.num_threads = threads;
        const DetectionAnalyzer analyzer(sc.sim, sc.patterns, sc.monitored,
                                         dac);
        const std::vector<FaultRanges> got = analyzer.analyze(sc.faults);
        SCOPED_TRACE("num_threads=" + std::to_string(threads));
        expect_ranges_equal(got, want);

        const DetectionCounters c = analyzer.counters();
        EXPECT_EQ(c.pairs_total,
                  sc.faults.size() * sc.patterns.size());
        EXPECT_EQ(c.pairs_screened_out + c.pairs_inactive +
                      c.pairs_simulated,
                  c.pairs_total);
        EXPECT_LE(c.pairs_detected, c.pairs_simulated);
        EXPECT_GT(c.cones_cached, 0u);
    }
}

TEST_P(FaultSimEquivalence, ScreenIsConservative) {
    const Scenario sc(GetParam());
    const ActivationScreen screen(sc.nl, sc.patterns);
    const FaultSim fsim(sc.sim);
    for (std::uint32_t pi = 0; pi < sc.patterns.size(); ++pi) {
        const auto good =
            sc.sim.simulate(sc.patterns[pi].v1, sc.patterns[pi].v2);
        for (const DelayFault& f : sc.faults) {
            if (fsim.activated(f, good)) {
                EXPECT_TRUE(screen.may_activate(sc.nl, f.site, pi))
                    << "screen dropped an activated pair (pattern " << pi
                    << ")";
            }
        }
        // Stronger: the screen bit must be set for ANY signal that
        // toggles at all (either direction).
        for (GateId g = 0; g < sc.nl.size(); ++g) {
            if (!good[g].is_constant()) {
                EXPECT_TRUE(screen.may_toggle(g, pi))
                    << "signal " << g << " toggles but screen bit is 0";
            }
        }
    }
}

TEST_P(FaultSimEquivalence, DetectionTableMatchesAcrossThreadCounts) {
    const Scenario sc(GetParam());
    const std::vector<Time> periods{sc.sta.clock_period,
                                    sc.sta.clock_period * 0.8,
                                    sc.sta.clock_period * 0.6};
    const std::vector<Time> config_delays{0.0, sc.sta.clock_period * 0.1,
                                          sc.sta.clock_period * 0.3};

    std::vector<std::vector<DetectionEntry>> tables;
    for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                      std::size_t{3}}) {
        DetectionAnalysisConfig dac = sc.dac;
        dac.num_threads = threads;
        const DetectionAnalyzer analyzer(sc.sim, sc.patterns, sc.monitored,
                                         dac);
        const auto ranges = analyzer.analyze(sc.faults);
        tables.push_back(analyzer.detection_table(sc.faults, ranges,
                                                  periods, config_delays));
    }
    ASSERT_EQ(tables.size(), 3u);
    for (std::size_t t = 1; t < tables.size(); ++t) {
        ASSERT_EQ(tables[t].size(), tables[0].size());
        for (std::size_t i = 0; i < tables[t].size(); ++i) {
            EXPECT_EQ(tables[t][i].fault_index, tables[0][i].fault_index);
            EXPECT_EQ(tables[t][i].pattern, tables[0][i].pattern);
            EXPECT_EQ(tables[t][i].config, tables[0][i].config);
            EXPECT_EQ(tables[t][i].period, tables[0][i].period);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSimEquivalence,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace fastmon
