#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/metrics.hpp"

namespace fastmon {
namespace {

TEST(ThreadPool, ExplicitSizeIsHonored) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeMatchesHardware) {
    ThreadPool pool;
    EXPECT_EQ(pool.size(),
              std::max(1u, std::thread::hardware_concurrency()));
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
    ThreadPool pool(4);
    constexpr int kTasks = 2000;
    std::vector<std::atomic<int>> hits(kTasks);
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < kTasks; ++i) {
        group.run([&hits, i] { hits[i].fetch_add(1); });
    }
    group.wait();
    for (int i = 0; i < kTasks; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    }
}

TEST(ThreadPool, ContendedCounterIsExact) {
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    ThreadPool::TaskGroup group(pool);
    constexpr std::uint64_t kTasks = 500;
    constexpr std::uint64_t kIters = 200;
    for (std::uint64_t t = 0; t < kTasks; ++t) {
        group.run([&sum] {
            for (std::uint64_t i = 0; i < kIters; ++i) {
                sum.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    group.wait();
    EXPECT_EQ(sum.load(), kTasks * kIters);
}

TEST(ThreadPool, ReusedAcrossSubmissionRounds) {
    ThreadPool pool(2);
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round) {
        ThreadPool::TaskGroup group(pool);
        for (int i = 0; i < 20; ++i) {
            group.run([&total] { total.fetch_add(1); });
        }
        group.wait();
    }
    EXPECT_EQ(total.load(), 50 * 20);
}

TEST(ThreadPool, WaitRethrowsFirstException) {
    ThreadPool pool(2);
    ThreadPool::TaskGroup group(pool);
    std::atomic<int> completed{0};
    for (int i = 0; i < 16; ++i) {
        group.run([&completed, i] {
            if (i == 5) throw std::runtime_error("task 5 failed");
            completed.fetch_add(1);
        });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    // The group is drained after wait(): a second wait is a no-op and
    // must not rethrow the already-delivered exception.
    EXPECT_NO_THROW(group.wait());
    EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPool, CancelDrainsQueuedTasksWithoutRunningThem) {
    ThreadPool pool(2);
    ThreadPool::TaskGroup group(pool);
    // Park both workers so the queue backs up deterministically.
    std::atomic<int> parked{0};
    std::atomic<bool> release{false};
    std::atomic<int> ran{0};
    for (int i = 0; i < 2; ++i) {
        group.run([&parked, &release, &ran] {
            parked.fetch_add(1);
            while (!release.load()) std::this_thread::yield();
            ran.fetch_add(1);
        });
    }
    while (parked.load() < 2) std::this_thread::yield();
    constexpr int kQueued = 100;
    for (int i = 0; i < kQueued; ++i) {
        group.run([&ran] { ran.fetch_add(1); });
    }
    pool.cancel();
    release.store(true);
    // wait() still balances: drained tasks complete their bookkeeping,
    // they just skip the user function.
    group.wait();
    EXPECT_EQ(ran.load(), 2);  // only the already-running blockers
    EXPECT_EQ(pool.stats().tasks_drained, static_cast<std::uint64_t>(kQueued));
    pool.reset_cancel();
    // The pool is usable again after the drain.
    ThreadPool::TaskGroup after(pool);
    std::atomic<int> post{0};
    after.run([&post] { post.fetch_add(1); });
    after.wait();
    EXPECT_EQ(post.load(), 1);
}

TEST(ThreadPool, NestedSubmissionFromWorkerTasks) {
    ThreadPool pool(3);
    std::atomic<int> inner_runs{0};
    ThreadPool::TaskGroup outer(pool);
    for (int i = 0; i < 8; ++i) {
        outer.run([&pool, &inner_runs] {
            ThreadPool::TaskGroup inner(pool);
            for (int k = 0; k < 8; ++k) {
                inner.run([&inner_runs] { inner_runs.fetch_add(1); });
            }
            inner.wait();  // waiting inside a worker must not deadlock
        });
    }
    outer.wait();
    EXPECT_EQ(inner_runs.load(), 8 * 8);
}

TEST(ThreadPool, ParallelChunksCoversRangeExactly) {
    ThreadPool pool(4);
    constexpr std::size_t kTotal = 10007;  // prime: uneven chunks
    std::vector<std::atomic<int>> hits(kTotal);
    pool.parallel_chunks(kTotal, 0, [&hits](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kTotal; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ParallelChunksEmptyAndSingle) {
    ThreadPool pool(2);
    int calls = 0;
    pool.parallel_chunks(0, 0, [&calls](std::size_t, std::size_t) {
        ++calls;
    });
    EXPECT_EQ(calls, 0);
    pool.parallel_chunks(1, 0, [&calls](std::size_t b, std::size_t e) {
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 1u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, StatsCountExecutedTasks) {
    ThreadPool pool(4);
    constexpr int kTasks = 300;
    std::atomic<int> ran{0};
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < kTasks; ++i) {
        group.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    const ThreadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.tasks_executed, static_cast<std::uint64_t>(kTasks));
    // All tasks came through the injection queue (caller is external).
    EXPECT_EQ(stats.tasks_injected, static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(stats.worker_busy_seconds.size(), pool.size());
    EXPECT_GE(stats.total_busy_seconds(), 0.0);
}

TEST(ThreadPool, PublishMetricsFillsPoolGauges) {
    ThreadPool pool(2);
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 50; ++i) {
        group.run([] {});
    }
    group.wait();
    MetricsRegistry reg;
    pool.publish_metrics(reg);
    EXPECT_DOUBLE_EQ(reg.gauge("pool.workers").value(), 2.0);
    EXPECT_DOUBLE_EQ(reg.gauge("pool.tasks_executed").value(), 50.0);
    EXPECT_EQ(reg.histogram("pool.worker_busy_seconds").count(), 2u);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
    ThreadPool& a = ThreadPool::shared();
    ThreadPool& b = ThreadPool::shared();
    EXPECT_EQ(&a, &b);
    std::atomic<int> ran{0};
    ThreadPool::TaskGroup group(a);
    group.run([&ran] { ran.fetch_add(1); });
    group.wait();
    EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace fastmon
