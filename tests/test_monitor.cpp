#include "monitor/monitor.hpp"

#include <gtest/gtest.h>

#include "monitor/placement.hpp"
#include "timing/sta_engine.hpp"
#include "monitor/shifting.hpp"
#include "netlist/iscas_data.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

TEST(Monitor, ConfigZeroIsOff) {
    const ProgrammableDelayMonitor m({10.0, 20.0});
    EXPECT_EQ(m.num_configs(), 3u);
    EXPECT_DOUBLE_EQ(m.delay(0), 0.0);
    EXPECT_DOUBLE_EQ(m.delay(1), 10.0);
    EXPECT_DOUBLE_EQ(m.delay(2), 20.0);
}

TEST(Monitor, RejectsNonPositiveDelays) {
    EXPECT_THROW(ProgrammableDelayMonitor({0.0}), std::invalid_argument);
    EXPECT_THROW(ProgrammableDelayMonitor({-5.0}), std::invalid_argument);
}

TEST(Monitor, ShadowCapturesDelayedSignal) {
    const ProgrammableDelayMonitor m({10.0});
    const Waveform d = Waveform::step(false, 95.0);  // rises at 95
    // Capture at t = 100: main sees 1; shadow sees D(90) = 0 -> alert.
    EXPECT_TRUE(ProgrammableDelayMonitor::capture_main(d, 100.0));
    EXPECT_FALSE(m.capture_shadow(d, 100.0, 1));
    EXPECT_TRUE(m.alert(d, 100.0, 1));
    // Config 0 (off): shadow equals main, no alert.
    EXPECT_FALSE(m.alert(d, 100.0, 0));
}

TEST(Monitor, StableSignalNeverAlerts) {
    const ProgrammableDelayMonitor m({10.0, 30.0});
    const Waveform d = Waveform::step(true, 40.0);  // settles at 40
    for (ConfigIndex c = 0; c < m.num_configs(); ++c) {
        EXPECT_FALSE(m.alert(d, 100.0, c)) << "config " << c;
    }
}

TEST(Monitor, Fig2Semantics) {
    // Fig. 2 of the paper: signal degrades; with the wide window the
    // alert fires, with the narrow one it does not (b/c), and further
    // degradation triggers the narrow window too (c).
    const Time clk = 100.0;
    const ProgrammableDelayMonitor m({5.0, 33.3});
    const Waveform healthy = Waveform::step(false, 60.0);
    const Waveform degraded = Waveform::step(false, 70.0);   // within wide
    const Waveform critical = Waveform::step(false, 96.0);   // within narrow
    // Wide window (index 2, delay 33.3): watches (66.7, 100].
    EXPECT_FALSE(m.alert(healthy, clk, 2));
    EXPECT_TRUE(m.alert(degraded, clk, 2));
    // Narrow window (index 1, delay 5): watches (95, 100].
    EXPECT_FALSE(m.alert(degraded, clk, 1));
    EXPECT_TRUE(m.alert(critical, clk, 1));
}

TEST(Monitor, AlertEqualsWindowViolationOnRandomWaves) {
    const ProgrammableDelayMonitor m({7.0, 15.0, 40.0});
    Prng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::pair<Time, bool>> events;
        bool v = rng.chance(0.5);
        const bool initial = v;
        Time t = 0.0;
        for (int i = 0; i < 12; ++i) {
            t += rng.uniform(0.5, 20.0);
            v = !v;
            events.emplace_back(t, v);
        }
        const Waveform w = Waveform::from_events(initial, events);
        const Time capture = rng.uniform(50.0, 150.0);
        for (ConfigIndex c = 0; c < m.num_configs(); ++c) {
            EXPECT_EQ(m.alert(w, capture, c), m.window_violation(w, capture, c))
                << "trial " << trial << " config " << c;
        }
    }
}

TEST(Monitor, PaperMonitorFractions) {
    const ProgrammableDelayMonitor m = make_paper_monitor(300.0);
    ASSERT_EQ(m.num_configs(), 5u);
    EXPECT_DOUBLE_EQ(m.delay(1), 15.0);   // 0.05 clk
    EXPECT_DOUBLE_EQ(m.delay(2), 30.0);   // 0.10 clk
    EXPECT_DOUBLE_EQ(m.delay(3), 45.0);   // 0.15 clk
    EXPECT_NEAR(m.delay(4), 100.0, 1e-9); // clk / 3
}

TEST(Placement, CoversRequestedFractionOfPseudoOutputs) {
    const Netlist nl = make_mini_adder();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const MonitorPlacement p =
        place_monitors(nl, sta, 0.5, paper_delay_fractions());
    EXPECT_EQ(p.num_monitors(), nl.flip_flops().size() / 2);
    // Monitors sit on the *longest* pseudo outputs.
    const auto ops = nl.observe_points();
    Time min_monitored = 1e18;
    Time max_unmonitored = -1.0;
    for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
        if (!ops[oi].is_pseudo) continue;
        const Time a = sta.max_arrival[ops[oi].signal];
        if (p.monitored[oi]) {
            min_monitored = std::min(min_monitored, a);
        } else {
            max_unmonitored = std::max(max_unmonitored, a);
        }
    }
    EXPECT_GE(min_monitored, max_unmonitored - 1e-9);
}

TEST(Placement, NeverMonitorsPrimaryOutputs) {
    const Netlist nl = make_mini_adder();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const MonitorPlacement p = place_paper_monitors(nl, sta);
    const auto ops = nl.observe_points();
    for (std::uint32_t oi = 0; oi < ops.size(); ++oi) {
        if (p.monitored[oi]) {
            EXPECT_TRUE(ops[oi].is_pseudo);
        }
    }
}

TEST(Placement, ConfigDelaysSortedWithOffFirst) {
    const Netlist nl = make_mini_adder();
    const DelayAnnotation ann = DelayAnnotation::nominal(nl);
    const StaResult sta = StaEngine(nl, ann).analyze();
    const MonitorPlacement p = place_paper_monitors(nl, sta);
    ASSERT_EQ(p.config_delays.size(), 5u);
    EXPECT_DOUBLE_EQ(p.config_delays[0], 0.0);
    for (std::size_t c = 1; c < p.config_delays.size(); ++c) {
        EXPECT_GT(p.config_delays[c], p.config_delays[c - 1]);
    }
    EXPECT_NEAR(p.max_delay(), sta.clock_period / 3.0, 1e-9);
}

TEST(Shifting, ShiftedUnionContainsAllShifts) {
    IntervalSet base{{10.0, 20.0}};
    const std::vector<Time> delays{0.0, 5.0, 50.0};
    const IntervalSet u = shifted_union(base, delays);
    EXPECT_TRUE(u.contains(10.0));   // d = 0
    EXPECT_TRUE(u.contains(24.0));   // d = 5
    EXPECT_TRUE(u.contains(65.0));   // d = 50
    EXPECT_FALSE(u.contains(40.0));  // gap between 25 and 60
    // Overlapping shifts merge.
    EXPECT_EQ(u.size(), 2u);
}

TEST(Shifting, FullRangeUnitesFfAndShiftedSr) {
    FaultRanges r;
    r.ff.add(50.0, 60.0);
    r.sr.add(10.0, 15.0);
    const std::vector<Time> delays{0.0, 30.0};
    const IntervalSet full = full_detection_range(r, delays);
    EXPECT_TRUE(full.contains(55.0));  // FF part
    EXPECT_TRUE(full.contains(12.0));  // SR with d = 0
    EXPECT_TRUE(full.contains(42.0));  // SR with d = 30
}

TEST(Shifting, FastWindowSemantics) {
    const Time t_nom = 300.0;
    const Interval w = fast_window(t_nom, 3.0);
    // t_min excluded, t_nom included.
    EXPECT_FALSE(w.contains(100.0));
    EXPECT_TRUE(w.contains(100.1));
    EXPECT_TRUE(w.contains(300.0));
    EXPECT_FALSE(w.contains(300.1));
    // Degenerate window at fmax = fnom still contains exactly t_nom.
    const Interval w1 = fast_window(t_nom, 1.0);
    EXPECT_TRUE(w1.contains(300.0));
    EXPECT_FALSE(w1.contains(299.0));
}

TEST(Shifting, DetectsAtSpeed) {
    IntervalSet r{{295.0, 305.0}};
    EXPECT_TRUE(detects_at_speed(r, 300.0));
    IntervalSet late{{301.0, 305.0}};
    EXPECT_FALSE(detects_at_speed(late, 300.0));
}

}  // namespace
}  // namespace fastmon
