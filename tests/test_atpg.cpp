#include "atpg/tdf_atpg.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

TEST(TfaultSim, EnumeratesBothDirectionsPerPin) {
    NetlistBuilder b("e");
    b.input("a").input("c");
    b.nand2("g", "a", "c");
    b.output("g");
    const Netlist nl = b.build();
    const auto faults = enumerate_tdf_faults(nl);
    EXPECT_EQ(faults.size(), 6u);  // (out + 2 pins) x 2 directions
}

TEST(TfaultSim, DetectsSimpleTransition) {
    // y = BUF(a): STR at y detected by (0 -> 1) transition, pattern at
    // lane 0.
    NetlistBuilder b("buf");
    b.input("a");
    b.buf("y", "a");
    b.output("y");
    const Netlist nl = b.build();
    TransitionFaultSim sim(nl);
    std::vector<PatternPair> pats{{{0}, {1}}, {{1}, {0}}, {{1}, {1}}};
    const auto batch = sim.pack(pats, 0);
    const auto values = sim.evaluate(batch);
    const GateId y = nl.find("y");
    const std::uint64_t str = sim.detect_mask(
        TdfFault{FaultSite{y, FaultSite::kOutputPin}, true}, values);
    EXPECT_EQ(str & 0b111, 0b001u);
    const std::uint64_t stf = sim.detect_mask(
        TdfFault{FaultSite{y, FaultSite::kOutputPin}, false}, values);
    EXPECT_EQ(stf & 0b111, 0b010u);
}

TEST(TfaultSim, PropagationBlockedByOffPath) {
    // y = AND(a, b): transition on a undetected when b = 0.
    NetlistBuilder b("blk");
    b.input("a").input("c");
    b.and2("y", "a", "c");
    b.output("y");
    const Netlist nl = b.build();
    TransitionFaultSim sim(nl);
    // a: 0->1 with c = 0 (blocked), then with c = 1 (detected).
    std::vector<PatternPair> pats{{{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}};
    const auto batch = sim.pack(pats, 0);
    const auto values = sim.evaluate(batch);
    const std::uint64_t m = sim.detect_mask(
        TdfFault{FaultSite{nl.find("y"), 0}, true}, values);
    EXPECT_EQ(m & 0b11, 0b10u);
}

TEST(TfaultSim, FaultSimulateReportsFirstDetectingPattern) {
    const Netlist nl = make_s27();
    Prng rng(7);
    const std::size_t n = nl.comb_sources().size();
    std::vector<PatternPair> pats;
    for (int i = 0; i < 96; ++i) {
        PatternPair p;
        p.v1.resize(n);
        p.v2.resize(n);
        for (std::size_t s = 0; s < n; ++s) {
            p.v1[s] = rng.chance(0.5) ? 1 : 0;
            p.v2[s] = rng.chance(0.5) ? 1 : 0;
        }
        pats.push_back(p);
    }
    const auto faults = enumerate_tdf_faults(nl);
    const auto first = fault_simulate_tdf(nl, faults, pats);
    ASSERT_EQ(first.size(), faults.size());
    TransitionFaultSim sim(nl);
    std::size_t detected = 0;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        if (first[fi] == SIZE_MAX) continue;
        ++detected;
        // Confirm: the reported pattern detects, and no earlier one does.
        for (std::size_t pi = 0; pi <= first[fi]; ++pi) {
            const auto batch = sim.pack(pats, pi);
            const std::uint64_t m =
                sim.detect_mask(faults[fi], sim.evaluate(batch)) & 1ULL;
            EXPECT_EQ(m != 0, pi == first[fi])
                << "fault " << fi << " pattern " << pi;
        }
    }
    EXPECT_GT(detected, faults.size() / 2);
}

TEST(Atpg, FullCoverageOnS27) {
    AtpgConfig cfg;
    cfg.seed = 3;
    const AtpgResult r = generate_tdf_tests(make_s27(), cfg);
    EXPECT_EQ(r.num_faults, 56u);
    // s27 TDF faults are all testable with enhanced scan.
    EXPECT_EQ(r.num_detected + r.num_untestable, r.num_faults);
    EXPECT_GT(r.coverage(), 0.95);
    EXPECT_GT(r.test_set.size(), 0u);
    EXPECT_LT(r.test_set.size(), 30u);  // compaction works
}

TEST(Atpg, ResultConfirmedByFaultSimulation) {
    const Netlist nl = make_mini_alu();
    AtpgConfig cfg;
    cfg.seed = 4;
    const AtpgResult r = generate_tdf_tests(nl, cfg);
    const auto faults = enumerate_tdf_faults(nl);
    const auto first = fault_simulate_tdf(nl, faults, r.test_set.patterns);
    std::size_t confirmed = 0;
    for (std::size_t fd : first) {
        if (fd != SIZE_MAX) ++confirmed;
    }
    EXPECT_EQ(confirmed, r.num_detected);
}

TEST(Atpg, CompactionKeepsCoverage) {
    // Deterministic phase off: random + compaction only; re-simulating
    // the compacted set must reach the reported coverage.
    const Netlist nl = generate_circuit(
        GeneratorConfig{"atpg_gen", 400, 40, 12, 12, 12, 0.5, 31});
    AtpgConfig cfg;
    cfg.seed = 9;
    cfg.deterministic_phase = false;
    const AtpgResult r = generate_tdf_tests(nl, cfg);
    const auto faults = enumerate_tdf_faults(nl);
    const auto first = fault_simulate_tdf(nl, faults, r.test_set.patterns);
    std::size_t detected = 0;
    for (std::size_t fd : first) {
        if (fd != SIZE_MAX) ++detected;
    }
    EXPECT_EQ(detected, r.num_detected);
    EXPECT_GT(r.coverage(), 0.5);
}

TEST(Atpg, DeterministicPhaseImprovesCoverage) {
    const Netlist nl = generate_circuit(
        GeneratorConfig{"atpg_det", 300, 30, 10, 10, 10, 0.5, 33});
    AtpgConfig random_only;
    random_only.seed = 11;
    random_only.deterministic_phase = false;
    random_only.max_random_batches = 10;
    random_only.max_idle_batches = 3;
    AtpgConfig with_podem = random_only;
    with_podem.deterministic_phase = true;
    const AtpgResult r1 = generate_tdf_tests(nl, random_only);
    const AtpgResult r2 = generate_tdf_tests(nl, with_podem);
    EXPECT_GE(r2.num_detected, r1.num_detected);
    EXPECT_GT(r2.efficiency(), r1.coverage());
}

TEST(Atpg, DeterministicAcrossRuns) {
    AtpgConfig cfg;
    cfg.seed = 21;
    const AtpgResult a = generate_tdf_tests(make_s27(), cfg);
    const AtpgResult b = generate_tdf_tests(make_s27(), cfg);
    EXPECT_EQ(a.test_set.patterns, b.test_set.patterns);
    EXPECT_EQ(a.num_detected, b.num_detected);
}

}  // namespace
}  // namespace fastmon
