#include <algorithm>

#include <gtest/gtest.h>

#include "monitor/policy.hpp"
#include "netlist/iscas_data.hpp"
#include "schedule/freq_select.hpp"
#include "schedule/robustness.hpp"
#include "timing/sta_engine.hpp"
#include "util/prng.hpp"

namespace fastmon {
namespace {

TEST(Robustness, MarginsReflectBoundaryDistance) {
    std::vector<IntervalSet> ranges(2);
    ranges[0].add(10.0, 30.0);
    ranges[1].add(25.0, 45.0);
    const std::vector<Time> periods{20.0, 27.0};
    const RobustnessReport r = selection_margins(ranges, periods);
    EXPECT_EQ(r.covered, 2u);
    ASSERT_EQ(r.margins.size(), 2u);
    // Fault 0: best period 20 -> min(10, 10) = 10.
    EXPECT_NEAR(r.margins[0], 10.0, 1e-9);
    // Fault 1: 27 -> min(2, 18) = 2.
    EXPECT_NEAR(r.margins[1], 2.0, 1e-9);
    EXPECT_NEAR(r.min_margin, 2.0, 1e-9);
}

TEST(Robustness, IdenticalScaleKeepsFullCoverage) {
    Prng rng(5);
    std::vector<IntervalSet> ranges(50);
    std::vector<Time> periods;
    for (auto& r : ranges) {
        const Time lo = rng.uniform(100.0, 500.0);
        r.add(lo, lo + rng.uniform(5.0, 40.0));
        periods.push_back(r[0].midpoint());
    }
    EXPECT_DOUBLE_EQ(coverage_under_scaling(ranges, periods, 1.0), 1.0);
}

TEST(Robustness, LargeShiftLosesCoverageGradually) {
    Prng rng(6);
    std::vector<IntervalSet> ranges(100);
    for (auto& r : ranges) {
        const Time lo = rng.uniform(100.0, 500.0);
        r.add(lo, lo + rng.uniform(5.0, 25.0));
    }
    std::vector<Time> periods;
    for (const auto& r : ranges) periods.push_back(r[0].midpoint());
    const std::vector<double> scales{1.0, 1.01, 1.05, 1.2};
    const std::vector<double> retained =
        robustness_sweep(ranges, periods, scales);
    ASSERT_EQ(retained.size(), 4u);
    EXPECT_DOUBLE_EQ(retained[0], 1.0);
    // Monotone loss with growing shift.
    EXPECT_GE(retained[0], retained[1]);
    EXPECT_GE(retained[1], retained[2]);
    EXPECT_GE(retained[2], retained[3]);
    EXPECT_LT(retained[3], 0.9);  // 20 % shift must hurt narrow ranges
}

TEST(Robustness, MidpointsBeatBoundaryPoints) {
    // The paper's rationale for midpoints (Sec. IV-A): piercing at the
    // boundary loses coverage under tiny shifts; midpoints survive.
    Prng rng(7);
    std::vector<IntervalSet> ranges(80);
    std::vector<Time> midpoints;
    std::vector<Time> boundaries;
    for (auto& r : ranges) {
        const Time lo = rng.uniform(100.0, 500.0);
        r.add(lo, lo + rng.uniform(5.0, 30.0));
        midpoints.push_back(r[0].midpoint());
        boundaries.push_back(r[0].hi - 1e-6);
    }
    // Symmetric uncertainty: the device may be slower or faster than
    // simulated.  Midpoints maximize the worst case; a boundary point
    // loses everything for one of the two directions.
    const double mid = std::min(coverage_under_scaling(ranges, midpoints, 1.02),
                                coverage_under_scaling(ranges, midpoints, 0.98));
    const double bnd =
        std::min(coverage_under_scaling(ranges, boundaries, 1.02),
                 coverage_under_scaling(ranges, boundaries, 0.98));
    EXPECT_GT(mid, bnd);
}

struct PolicyFixture : ::testing::Test {
    Netlist nl = make_mini_alu();
    DelayAnnotation base = DelayAnnotation::nominal(nl);
    StaResult sta = StaEngine(nl, base, 1.6).analyze();
    MonitorPlacement placement = place_paper_monitors(nl, sta);
    AgingModel aging{0.55, 1.0, 10.0};
    LifetimeSimulator sim{nl, base, sta.clock_period, aging, 1};
};

TEST_F(PolicyFixture, EventsFollowTheFig2Script) {
    const PolicyRun run = run_adaptive_policy(sim, placement);
    ASSERT_FALSE(run.events.empty());
    // First event is an alert at the widest configuration.
    EXPECT_EQ(run.events.front().kind, PolicyEventKind::Alert);
    EXPECT_EQ(run.events.front().config,
              placement.config_delays.size() - 1);
    // Alerts -> countermeasure -> reconfigure sequences, configs
    // strictly narrowing.
    ConfigIndex last_config = static_cast<ConfigIndex>(
        placement.config_delays.size() - 1);
    for (const PolicyEvent& e : run.events) {
        if (e.kind == PolicyEventKind::Reconfigure) {
            EXPECT_LT(e.config, last_config);
            last_config = e.config;
        }
    }
    // Times are non-decreasing.
    for (std::size_t i = 1; i < run.events.size(); ++i) {
        EXPECT_GE(run.events[i].years, run.events[i - 1].years);
    }
}

TEST_F(PolicyFixture, CountermeasuresExtendLifetime) {
    PolicyConfig with;
    with.countermeasure_rate_scale = 0.4;
    PolicyConfig without;
    without.countermeasure_rate_scale = 1.0;  // no mitigation effect
    const PolicyRun mitigated = run_adaptive_policy(sim, placement, with);
    const PolicyRun unmitigated = run_adaptive_policy(sim, placement, without);
    ASSERT_TRUE(unmitigated.failed());
    if (mitigated.failed()) {
        EXPECT_GT(mitigated.failure_years, unmitigated.failure_years);
    }
}

TEST_F(PolicyFixture, ImminentFailurePrecedesFailure) {
    PolicyConfig config;
    config.countermeasure_rate_scale = 0.8;
    const PolicyRun run = run_adaptive_policy(sim, placement, config);
    if (run.failed()) {
        ASSERT_GE(run.imminent_failure_years, 0.0);
        EXPECT_LT(run.imminent_failure_years, run.failure_years);
        EXPECT_GT(run.warning_years(), 0.0);
    }
}

TEST_F(PolicyFixture, PredictionIsInTheRightDecade) {
    PolicyConfig config;
    config.countermeasure_rate_scale = 1.0;  // keep the trend linear
    const PolicyRun run = run_adaptive_policy(sim, placement, config);
    ASSERT_TRUE(run.failed());
    ASSERT_GE(run.predicted_failure_years, 0.0);
    // Linear extrapolation at the first (early) alert of a linear aging
    // law: within a factor of ~2 of the actual failure time.
    EXPECT_GT(run.predicted_failure_years, 0.3 * run.failure_years);
    EXPECT_LT(run.predicted_failure_years, 3.0 * run.failure_years);
}

TEST(Policy, EventKindNames) {
    EXPECT_EQ(to_string(PolicyEventKind::Alert), "alert");
    EXPECT_EQ(to_string(PolicyEventKind::ImminentFailure),
              "imminent-failure");
}

}  // namespace
}  // namespace fastmon
