#include "flow/hdf_flow.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "flow/report.hpp"
#include "netlist/generator.hpp"
#include "netlist/iscas_data.hpp"

namespace fastmon {
namespace {

HdfFlowConfig small_config() {
    HdfFlowConfig config;
    config.seed = 5;
    config.atpg.max_random_batches = 30;
    config.atpg.max_idle_batches = 4;
    config.solver.time_limit_sec = 3.0;
    return config;
}

TEST(HdfFlow, S27EndToEnd) {
    const Netlist nl = make_s27();
    HdfFlowConfig config = small_config();
    config.monitor_fraction = 0.5;
    HdfFlow flow(nl, config);
    const HdfFlowResult r = flow.run();

    EXPECT_EQ(r.circuit, "s27");
    EXPECT_EQ(r.num_gates, 10u);
    EXPECT_EQ(r.num_ffs, 3u);
    EXPECT_EQ(r.num_monitors, 2u);  // ceil(0.5 * 3) pseudo outputs
    EXPECT_EQ(r.fault_universe, 56u);
    EXPECT_EQ(r.fault_universe,
              r.at_speed_detectable + r.timing_redundant + r.candidate_faults);
    EXPECT_GE(r.detected_prop, r.detected_conv);
    EXPECT_LE(r.target_faults, r.detected_prop);
    EXPECT_GT(r.clock_period, 0.0);
    EXPECT_NEAR(r.t_min, r.clock_period / 3.0, 1e-9);
    EXPECT_EQ(r.schedule_uncovered, 0u);
    // Schedule consistency: optimized never exceeds naive.
    EXPECT_LE(r.opti_pc, r.orig_pc);
    ASSERT_EQ(r.coverage_rows.size(), 4u);
    for (std::size_t k = 1; k < r.coverage_rows.size(); ++k) {
        EXPECT_LE(r.coverage_rows[k].num_frequencies,
                  r.coverage_rows[k - 1].num_frequencies);
        EXPECT_LE(r.coverage_rows[k].schedule_size,
                  r.coverage_rows[k - 1].schedule_size);
    }
}

TEST(HdfFlow, PhasesAndManifestCoverTheRun) {
    const Netlist nl = make_s27();
    HdfFlow flow(nl, small_config());
    const HdfFlowResult r = flow.run();

    // Every flow phase is recorded, in execution order.
    const std::vector<std::string> expected{
        "sta",         "monitor_placement",    "atpg",
        "classify",    "fault_sim_pass_a",     "shifting",
        "table1",      "freq_select",          "fault_sim_pass_b",
        "pattern_config_select",               "coverage_rows"};
    ASSERT_EQ(r.phases.size(), expected.size());
    double phase_wall = 0.0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(r.phases[i].name, expected[i]);
        EXPECT_GE(r.phases[i].wall_seconds, 0.0);
        phase_wall += r.phases[i].wall_seconds;
    }
    EXPECT_GT(r.total_wall_seconds, 0.0);
    // Phases are parts of the run: their sum cannot exceed the total.
    EXPECT_LE(phase_wall, r.total_wall_seconds * 1.001);

    const RunManifest m = flow.manifest(r);
    EXPECT_EQ(m.phases().size(), expected.size());
    ASSERT_NE(m.circuit().find("name"), nullptr);
    EXPECT_EQ(m.circuit().find("name")->as_string(), "s27");
    ASSERT_NE(m.config().find("seed"), nullptr);
    EXPECT_NE(m.metrics().find("detection"), nullptr);
    // The manifest document round-trips through JSON.
    const auto back = RunManifest::from_json(m.to_json());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
}

TEST(HdfFlow, CoverageCurveIsMonotone) {
    GeneratorConfig gc;
    gc.name = "flow_gen";
    gc.n_gates = 700;
    gc.n_ffs = 80;
    gc.n_inputs = 16;
    gc.n_outputs = 16;
    gc.depth = 16;
    gc.spread = 0.7;
    gc.seed = 77;
    const Netlist nl = generate_circuit(gc);
    HdfFlow flow(nl, small_config());
    flow.prepare();
    const std::vector<double> factors{1.0, 1.5, 2.0, 2.5, 3.0};
    const auto curve = flow.coverage_curve(factors);
    ASSERT_EQ(curve.size(), factors.size());
    for (std::size_t i = 0; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].prop, curve[i].conv - 1e-12);
        EXPECT_LE(curve[i].prop, 1.0 + 1e-12);
        if (i > 0) {
            EXPECT_GE(curve[i].conv, curve[i - 1].conv - 1e-12);
            EXPECT_GE(curve[i].prop, curve[i - 1].prop - 1e-12);
        }
    }
    // The monitor-friendly circuit must show a real gap at fmax = 3.
    EXPECT_GT(curve.back().prop, curve.back().conv);
}

TEST(HdfFlow, MonitorsShiftUndetectableFaultsIntoWindow) {
    GeneratorConfig gc;
    gc.name = "flow_gain";
    gc.n_gates = 700;
    gc.n_ffs = 80;
    gc.n_inputs = 16;
    gc.n_outputs = 16;
    gc.depth = 16;
    gc.spread = 0.8;
    gc.seed = 78;
    const Netlist nl = generate_circuit(gc);
    HdfFlow flow(nl, small_config());
    const HdfFlowResult r = flow.run();
    EXPECT_GT(r.gain_percent, 10.0);
    EXPECT_GT(r.target_faults, 0u);
    EXPECT_GT(r.freq_prop, 0u);
    EXPECT_LE(r.freq_prop, r.freq_heur);
}

TEST(HdfFlow, SuppliedTestSetSkipsAtpg) {
    const Netlist nl = make_s27();
    HdfFlowConfig config = small_config();
    // A minimal hand-rolled pattern set.
    TestSet ts;
    const std::size_t n = nl.comb_sources().size();
    for (std::size_t i = 0; i < 8; ++i) {
        PatternPair p;
        p.v1.assign(n, 0);
        p.v2.assign(n, 0);
        for (std::size_t s = 0; s < n; ++s) {
            p.v1[s] = static_cast<Bit>((i >> (s % 3)) & 1);
            p.v2[s] = static_cast<Bit>(((i + 1) >> (s % 3)) & 1);
        }
        ts.patterns.push_back(std::move(p));
    }
    config.test_set = ts;
    HdfFlow flow(nl, config);
    const HdfFlowResult r = flow.run();
    EXPECT_EQ(r.num_patterns, 8u);
    EXPECT_DOUBLE_EQ(r.atpg_coverage, 0.0);
}

TEST(HdfFlow, SamplingCapsSimulatedFaults) {
    GeneratorConfig gc;
    gc.name = "flow_sample";
    gc.n_gates = 600;
    gc.n_ffs = 60;
    gc.n_inputs = 14;
    gc.n_outputs = 14;
    gc.depth = 14;
    gc.spread = 0.5;
    gc.seed = 79;
    const Netlist nl = generate_circuit(gc);
    HdfFlowConfig config = small_config();
    config.max_simulated_faults = 200;
    HdfFlow flow(nl, config);
    const HdfFlowResult r = flow.run();
    EXPECT_LE(r.simulated_faults, 200u);
    // Scaled estimates stay in the universe's ballpark.
    EXPECT_LE(r.detected_prop, r.candidate_faults);
}

TEST(HdfFlow, DeterministicAcrossRuns) {
    const Netlist nl = make_s27();
    HdfFlow a(nl, small_config());
    HdfFlow b(nl, small_config());
    const HdfFlowResult ra = a.run();
    const HdfFlowResult rb = b.run();
    EXPECT_EQ(ra.detected_conv, rb.detected_conv);
    EXPECT_EQ(ra.detected_prop, rb.detected_prop);
    EXPECT_EQ(ra.freq_prop, rb.freq_prop);
    EXPECT_EQ(ra.opti_pc, rb.opti_pc);
}

TEST(Report, TablesRenderWithoutCrashing) {
    const Netlist nl = make_s27();
    HdfFlowConfig config = small_config();
    config.monitor_fraction = 0.5;
    HdfFlow flow(nl, config);
    const std::vector<HdfFlowResult> rows{flow.run()};
    std::ostringstream os;
    print_table1(os, rows);
    print_table2(os, rows);
    print_table3(os, rows);
    const std::vector<double> factors{1.0, 2.0, 3.0};
    print_fig3(os, flow.coverage_curve(factors));
    print_engine_counters(os, rows);
    print_phase_table(os, rows.front());
    const std::string out = os.str();
    EXPECT_NE(out.find("s27"), std::string::npos);
    EXPECT_NE(out.find("Phi_tar"), std::string::npos);
    EXPECT_NE(out.find("fmax/fnom"), std::string::npos);
    EXPECT_NE(out.find("pairs_total"), std::string::npos);
    EXPECT_NE(out.find("fault_sim_pass_a"), std::string::npos);
    EXPECT_NE(out.find("total (wall)"), std::string::npos);
}

}  // namespace
}  // namespace fastmon
