// Symmetric JSON round-tripping: every report row type that grew a
// from_json in the incremental-STA PR must satisfy
// from_json(to_json(x)) == x, and reject structurally wrong input with
// nullopt instead of garbage values.
#include <gtest/gtest.h>

#include <optional>

#include "campaign/aggregate.hpp"
#include "campaign/rollout.hpp"
#include "flow/hdf_flow.hpp"
#include "monitor/aging.hpp"
#include "util/json.hpp"

namespace fastmon {
namespace {

// One template drives every row type: serialize, parse back through
// the validating from_json, compare with the defaulted operator==.
template <typename T>
void expect_roundtrip(const T& value) {
    const Json j = value.to_json();
    const std::optional<T> back = T::from_json(j);
    ASSERT_TRUE(back.has_value()) << j.dump(2);
    EXPECT_EQ(*back, value) << j.dump(2);
}

template <typename T>
void expect_rejected(const Json& j) {
    EXPECT_FALSE(T::from_json(j).has_value()) << j.dump(2);
}

TEST(JsonRoundtrip, DeviceOutcome) {
    DeviceOutcome out;
    out.index = 42;
    out.marginal = true;
    out.num_defects = 2;
    out.aging_amplitude = 0.135;
    out.first_alert_years = {-1.0, 2.5, 4.25, 8.0};
    out.failure_years = 9.75;
    out.margin_used_t0 = 0.61;
    out.screen_score = 1.75;
    expect_roundtrip(out);
    expect_roundtrip(DeviceOutcome{});  // all defaults
}

TEST(JsonRoundtrip, LifetimePoint) {
    LifetimePoint p;
    p.years = 3.25;
    p.worst_monitored_arrival = 812.5;
    p.worst_arrival = 911.0;
    p.alerts = {false, true, true, false, true};
    p.timing_failure = true;
    expect_roundtrip(p);
    expect_roundtrip(LifetimePoint{});
}

TEST(JsonRoundtrip, DistributionSummary) {
    DistributionSummary d;
    d.count = 37;
    d.mean = 4.125;
    d.p10 = 1.5;
    d.p50 = 4.0;
    d.p90 = 7.75;
    expect_roundtrip(d);
    expect_roundtrip(DistributionSummary{});
}

TEST(JsonRoundtrip, CoverageBySpeed) {
    CoverageBySpeed c;
    c.fmax_factor = 1.125;
    c.conv = 0.875;
    c.prop = 0.9375;
    expect_roundtrip(c);
}

TEST(JsonRoundtrip, CoverageRow) {
    CoverageRow r;
    r.coverage = 0.95;
    r.num_frequencies = 6;
    r.naive_pc = 48;
    r.schedule_size = 17;
    r.reduction_percent = 64.58333333333333;
    expect_roundtrip(r);
    expect_roundtrip(CoverageRow{});
}

TEST(JsonRoundtrip, RejectsWrongShapes) {
    expect_rejected<DeviceOutcome>(Json::array());
    expect_rejected<LifetimePoint>(Json::array());
    expect_rejected<DistributionSummary>(Json::object());

    // Field with the wrong type: "years" as a string.
    LifetimePoint p;
    p.alerts = {true};
    Json j = p.to_json();
    j.set("years", "three");
    expect_rejected<LifetimePoint>(j);

    // Alerts must be an array of booleans.
    Json j2 = p.to_json();
    Json bad_alerts = Json::array();
    bad_alerts.push_back(1.0);
    j2.set("alerts", std::move(bad_alerts));
    expect_rejected<LifetimePoint>(j2);

    // Missing required field.
    DistributionSummary d;
    Json j3 = d.to_json();
    j3.set("p50", Json());
    expect_rejected<DistributionSummary>(j3);

    CoverageRow r;
    Json j4 = r.to_json();
    j4.set("num_frequencies", "six");
    expect_rejected<CoverageRow>(j4);

    CoverageBySpeed c;
    Json j5 = c.to_json();
    j5.set("conv", true);
    expect_rejected<CoverageBySpeed>(j5);
}

}  // namespace
}  // namespace fastmon
