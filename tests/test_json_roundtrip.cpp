// Symmetric JSON round-tripping: every report row type that grew a
// from_json in the incremental-STA PR must satisfy
// from_json(to_json(x)) == x, and reject structurally wrong input with
// nullopt instead of garbage values.
#include <gtest/gtest.h>

#include <optional>

#include "campaign/aggregate.hpp"
#include "campaign/rollout.hpp"
#include "flow/hdf_flow.hpp"
#include "monitor/aging.hpp"
#include "util/json.hpp"
#include "wearout/activity.hpp"
#include "wearout/mechanism.hpp"
#include "wearout/mission.hpp"

namespace fastmon {
namespace {

// One template drives every row type: serialize, parse back through
// the validating from_json, compare with the defaulted operator==.
template <typename T>
void expect_roundtrip(const T& value) {
    const Json j = value.to_json();
    const std::optional<T> back = T::from_json(j);
    ASSERT_TRUE(back.has_value()) << j.dump(2);
    EXPECT_EQ(*back, value) << j.dump(2);
}

template <typename T>
void expect_rejected(const Json& j) {
    EXPECT_FALSE(T::from_json(j).has_value()) << j.dump(2);
}

TEST(JsonRoundtrip, DeviceOutcome) {
    DeviceOutcome out;
    out.index = 42;
    out.marginal = true;
    out.num_defects = 2;
    out.aging_amplitude = 0.135;
    out.first_alert_years = {-1.0, 2.5, 4.25, 8.0};
    out.failure_years = 9.75;
    out.margin_used_t0 = 0.61;
    out.screen_score = 1.75;
    expect_roundtrip(out);
    expect_roundtrip(DeviceOutcome{});  // all defaults
}

TEST(JsonRoundtrip, LifetimePoint) {
    LifetimePoint p;
    p.years = 3.25;
    p.worst_monitored_arrival = 812.5;
    p.worst_arrival = 911.0;
    p.alerts = {false, true, true, false, true};
    p.timing_failure = true;
    expect_roundtrip(p);
    expect_roundtrip(LifetimePoint{});
}

TEST(JsonRoundtrip, DistributionSummary) {
    DistributionSummary d;
    d.count = 37;
    d.mean = 4.125;
    d.p10 = 1.5;
    d.p50 = 4.0;
    d.p90 = 7.75;
    expect_roundtrip(d);
    expect_roundtrip(DistributionSummary{});
}

TEST(JsonRoundtrip, CoverageBySpeed) {
    CoverageBySpeed c;
    c.fmax_factor = 1.125;
    c.conv = 0.875;
    c.prop = 0.9375;
    expect_roundtrip(c);
}

TEST(JsonRoundtrip, CoverageRow) {
    CoverageRow r;
    r.coverage = 0.95;
    r.num_frequencies = 6;
    r.naive_pc = 48;
    r.schedule_size = 17;
    r.reduction_percent = 64.58333333333333;
    expect_roundtrip(r);
    expect_roundtrip(CoverageRow{});
}

TEST(JsonRoundtrip, DeviceOutcomeWithAttribution) {
    DeviceOutcome out;
    out.index = 3;
    out.failure_years = 6.5;
    out.first_alert_years = {-1.0, 4.0};
    out.dominant_mechanism = "nbti";
    out.dominant_share = 0.625;
    expect_roundtrip(out);
}

TEST(JsonRoundtrip, OperatingPoint) {
    OperatingPoint op;
    op.temperature_c = 105.0;
    op.vdd = 0.85;
    op.frequency_ghz = 1.5;
    op.duty_cycle = 0.75;
    expect_roundtrip(op);
    expect_roundtrip(OperatingPoint{});
}

TEST(JsonRoundtrip, MissionPhaseAndProfile) {
    MissionPhase phase;
    phase.name = "highway";
    phase.duration_years = 0.125;
    phase.op.temperature_c = 105.0;
    expect_roundtrip(phase);

    // Every builtin profile survives the disk round trip — this is the
    // path custom --mission-profile JSON files take.
    for (const MissionProfile& p : builtin_mission_profiles()) {
        expect_roundtrip(p);
    }
    MissionProfile hold;
    hold.name = "hold";
    hold.cycle = false;
    hold.phases = {phase};
    expect_roundtrip(hold);
}

TEST(JsonRoundtrip, MechanismConfig) {
    for (const MechanismKind kind :
         {MechanismKind::LegacyPowerLaw, MechanismKind::Nbti,
          MechanismKind::Hci, MechanismKind::Em, MechanismKind::Tddb}) {
        expect_roundtrip(MechanismConfig::defaults(kind));
    }
    MechanismConfig custom = MechanismConfig::defaults(MechanismKind::Hci);
    custom.amplitude = 0.0625;
    custom.weibull_beta = 1.5;
    expect_roundtrip(custom);
}

TEST(JsonRoundtrip, ActivityConfig) {
    expect_roundtrip(ActivityConfig{});
    ActivityConfig constant;
    constant.mode = ActivityConfig::Mode::Constant;
    constant.num_pattern_pairs = 8;
    constant.seed = 99;
    expect_roundtrip(constant);
}

TEST(JsonRoundtrip, WearoutRejectsUnphysicalValues) {
    // Operating point: below absolute zero, dead rail, duty > 1.
    OperatingPoint op;
    Json j = op.to_json();
    j.set("temperature_c", -300.0);
    expect_rejected<OperatingPoint>(j);
    j = op.to_json();
    j.set("vdd", 0.0);
    expect_rejected<OperatingPoint>(j);
    j = op.to_json();
    j.set("duty_cycle", 1.5);
    expect_rejected<OperatingPoint>(j);

    // Phase: non-positive duration.
    MissionPhase phase;
    phase.name = "p";
    Json jp = phase.to_json();
    jp.set("duration_years", 0.0);
    expect_rejected<MissionPhase>(jp);

    // Profile: empty phase array, missing cycle flag.
    MissionProfile profile;
    profile.name = "x";
    profile.phases = {phase};
    Json jm = profile.to_json();
    jm.set("phases", Json::array());
    expect_rejected<MissionProfile>(jm);
    jm = profile.to_json();
    jm.set("cycle", Json());
    expect_rejected<MissionProfile>(jm);

    // Mechanism: unknown kind, negative amplitude, degenerate Weibull.
    MechanismConfig mech = MechanismConfig::defaults(MechanismKind::Em);
    Json jk = mech.to_json();
    jk.set("kind", "rust");
    expect_rejected<MechanismConfig>(jk);
    jk = mech.to_json();
    jk.set("amplitude", -0.1);
    expect_rejected<MechanismConfig>(jk);
    jk = mech.to_json();
    jk.set("weibull_beta", 0.0);
    expect_rejected<MechanismConfig>(jk);

    // Activity: unknown mode, zero pattern pairs.
    ActivityConfig act;
    Json ja = act.to_json();
    ja.set("mode", "psychic");
    expect_rejected<ActivityConfig>(ja);
    ja = act.to_json();
    ja.set("num_pattern_pairs", 0);
    expect_rejected<ActivityConfig>(ja);

    // Outcome: attribution share without a mechanism name is malformed.
    DeviceOutcome out;
    out.dominant_mechanism = "nbti";
    out.dominant_share = 0.5;
    Json jo = out.to_json();
    jo.set("dominant_mechanism", 7.0);
    expect_rejected<DeviceOutcome>(jo);
}

TEST(JsonRoundtrip, RejectsWrongShapes) {
    expect_rejected<DeviceOutcome>(Json::array());
    expect_rejected<LifetimePoint>(Json::array());
    expect_rejected<DistributionSummary>(Json::object());

    // Field with the wrong type: "years" as a string.
    LifetimePoint p;
    p.alerts = {true};
    Json j = p.to_json();
    j.set("years", "three");
    expect_rejected<LifetimePoint>(j);

    // Alerts must be an array of booleans.
    Json j2 = p.to_json();
    Json bad_alerts = Json::array();
    bad_alerts.push_back(1.0);
    j2.set("alerts", std::move(bad_alerts));
    expect_rejected<LifetimePoint>(j2);

    // Missing required field.
    DistributionSummary d;
    Json j3 = d.to_json();
    j3.set("p50", Json());
    expect_rejected<DistributionSummary>(j3);

    CoverageRow r;
    Json j4 = r.to_json();
    j4.set("num_frequencies", "six");
    expect_rejected<CoverageRow>(j4);

    CoverageBySpeed c;
    Json j5 = c.to_json();
    j5.set("conv", true);
    expect_rejected<CoverageBySpeed>(j5);
}

}  // namespace
}  // namespace fastmon
